//! 2D iterative closest point (ICP) scan matching: the geometric
//! alternative to grid correlation for aligning consecutive lidar scans.
//!
//! Each iteration pairs every source point with its nearest target point
//! (kd-tree), solves the optimal rigid transform in closed form (Horn's
//! method, 2D), and applies it. Converges in a handful of iterations for
//! the overlaps produced by consecutive robot poses.

use crate::geometry::{normalize_angle, Pose2, Vec2};
use crate::planning::KdTree;
use serde::{Deserialize, Serialize};

/// Parameters of the ICP solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IcpConfig {
    /// Maximum alignment iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the per-iteration pose change (meters +
    /// radians combined).
    pub tolerance: f64,
    /// Correspondences farther than this are discarded as outliers
    /// (meters).
    pub max_pair_distance: f64,
}

impl Default for IcpConfig {
    fn default() -> Self {
        Self { max_iterations: 30, tolerance: 1e-6, max_pair_distance: 2.0 }
    }
}

/// The result of one ICP alignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IcpResult {
    /// Transform mapping the source cloud onto the target cloud.
    pub transform: Pose2,
    /// Mean squared correspondence distance at convergence.
    pub mean_squared_error: f64,
    /// Iterations actually used.
    pub iterations: usize,
    /// Inlier correspondences in the final iteration.
    pub inliers: usize,
}

/// Aligns `source` onto `target` starting from `initial`.
///
/// Returns `None` if either cloud has fewer than 3 points or all
/// correspondences are rejected as outliers.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::{Pose2, Vec2};
/// use m7_kernels::slam::{icp_align, IcpConfig};
///
/// let target: Vec<Vec2> = (0..40).map(|i| Vec2::new(i as f64 * 0.2, (i as f64 * 0.3).sin())).collect();
/// let truth = Pose2::new(Vec2::new(0.3, -0.2), 0.1);
/// let source: Vec<Vec2> = target.iter().map(|&p| truth.inverse_transform_point(p)).collect();
/// let result = icp_align(&source, &target, Pose2::identity(), IcpConfig::default()).unwrap();
/// assert!(result.transform.position.distance(truth.position) < 1e-3);
/// ```
#[must_use]
pub fn icp_align(
    source: &[Vec2],
    target: &[Vec2],
    initial: Pose2,
    config: IcpConfig,
) -> Option<IcpResult> {
    if source.len() < 3 || target.len() < 3 {
        return None;
    }
    let mut tree = KdTree::new();
    for (i, p) in target.iter().enumerate() {
        tree.insert(*p, i);
    }

    let mut transform = initial;
    let mut mse = f64::INFINITY;
    let mut inliers = 0usize;
    let mut iterations = 0usize;
    let max_d2 = config.max_pair_distance * config.max_pair_distance;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Pair up inlier correspondences under the current transform.
        let mut pairs: Vec<(Vec2, Vec2)> = Vec::with_capacity(source.len());
        for &s in source {
            let moved = transform.transform_point(s);
            let (idx, d2) = tree.nearest(moved).expect("target is nonempty");
            if d2 <= max_d2 {
                pairs.push((s, target[idx]));
            }
        }
        if pairs.len() < 3 {
            return None;
        }
        inliers = pairs.len();

        // Closed-form rigid fit (Horn, 2D): rotation from the cross/dot
        // sums about the centroids, translation from the centroid residual.
        let n = pairs.len() as f64;
        let centroid_s = pairs.iter().fold(Vec2::ZERO, |a, (s, _)| a + *s) / n;
        let centroid_t = pairs.iter().fold(Vec2::ZERO, |a, (_, t)| a + *t) / n;
        let (mut sxx, mut syy) = (0.0, 0.0);
        for (s, t) in &pairs {
            let ds = *s - centroid_s;
            let dt = *t - centroid_t;
            sxx += ds.dot(dt);
            syy += ds.cross(dt);
        }
        let heading = syy.atan2(sxx);
        let rotation = Pose2::new(Vec2::ZERO, heading);
        let translation = centroid_t - rotation.transform_point(centroid_s);
        let next = Pose2::new(translation, heading);

        // Convergence measured as change from the previous transform.
        let delta = next.position.distance(transform.position)
            + normalize_angle(next.heading - transform.heading).abs();
        transform = next;

        mse = pairs
            .iter()
            .map(|(s, t)| transform.transform_point(*s).distance_squared(*t))
            .sum::<f64>()
            / n;
        if delta < config.tolerance {
            break;
        }
    }

    Some(IcpResult { transform, mean_squared_error: mse, iterations, inliers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A wavy wall of points — enough structure to pin down rotation.
    fn cloud() -> Vec<Vec2> {
        (0..80)
            .map(|i| {
                let t = i as f64 * 0.15;
                Vec2::new(t, (t * 1.3).sin() + 0.3 * (t * 0.7).cos())
            })
            .collect()
    }

    fn transformed(cloud: &[Vec2], pose: Pose2) -> Vec<Vec2> {
        // If `pose` maps source→target, the source is the inverse-mapped
        // target.
        cloud.iter().map(|&p| pose.inverse_transform_point(p)).collect()
    }

    #[test]
    fn recovers_exact_transform() {
        let target = cloud();
        let truth = Pose2::new(Vec2::new(0.4, -0.3), 0.15);
        let source = transformed(&target, truth);
        let r = icp_align(&source, &target, Pose2::identity(), IcpConfig::default()).unwrap();
        assert!(r.transform.position.distance(truth.position) < 1e-6, "{:?}", r.transform);
        assert!((r.transform.heading - truth.heading).abs() < 1e-6);
        assert!(r.mean_squared_error < 1e-10);
        assert_eq!(r.inliers, 80);
    }

    #[test]
    fn tolerates_noise() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let target = cloud();
        let truth = Pose2::new(Vec2::new(0.2, 0.25), -0.1);
        let source: Vec<Vec2> = transformed(&target, truth)
            .into_iter()
            .map(|p| p + Vec2::new(rng.gen_range(-0.02..0.02), rng.gen_range(-0.02..0.02)))
            .collect();
        let r = icp_align(&source, &target, Pose2::identity(), IcpConfig::default()).unwrap();
        assert!(r.transform.position.distance(truth.position) < 0.05);
        assert!((r.transform.heading - truth.heading).abs() < 0.02);
    }

    #[test]
    fn identity_for_identical_clouds() {
        let target = cloud();
        let r = icp_align(&target, &target, Pose2::identity(), IcpConfig::default()).unwrap();
        assert!(r.transform.position.norm() < 1e-9);
        assert!(r.transform.heading.abs() < 1e-9);
        assert!(r.iterations <= 3, "identical clouds converge immediately");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let two = vec![Vec2::ZERO, Vec2::new(1.0, 0.0)];
        assert!(icp_align(&two, &cloud(), Pose2::identity(), IcpConfig::default()).is_none());
        assert!(icp_align(&cloud(), &two, Pose2::identity(), IcpConfig::default()).is_none());
    }

    #[test]
    fn all_outliers_fail_cleanly() {
        // Source displaced far beyond the pairing gate with a tiny gate.
        let target = cloud();
        let source: Vec<Vec2> = target.iter().map(|&p| p + Vec2::new(100.0, 0.0)).collect();
        let config = IcpConfig { max_pair_distance: 0.5, ..IcpConfig::default() };
        assert!(icp_align(&source, &target, Pose2::identity(), config).is_none());
    }

    #[test]
    fn good_initial_guess_speeds_convergence() {
        let target = cloud();
        let truth = Pose2::new(Vec2::new(0.5, -0.4), 0.2);
        let source = transformed(&target, truth);
        let cold = icp_align(&source, &target, Pose2::identity(), IcpConfig::default()).unwrap();
        let warm = icp_align(&source, &target, truth, IcpConfig::default()).unwrap();
        assert!(warm.iterations <= cold.iterations);
        assert!(warm.mean_squared_error < 1e-10);
    }
}
