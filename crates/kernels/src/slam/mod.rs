//! Simultaneous localization and mapping kernels.
//!
//! Two SLAM formulations live here, on purpose:
//!
//! - [`EkfSlam`] — the *modern, sparse* landmark EKF: state grows only with
//!   the landmarks actually observed, and each update touches a bounded
//!   sub-block of the covariance.
//! - [`DenseScanSlam`] — an *obsolete, dense* grid-correlation scan matcher
//!   that brute-forces a pose window against an occupancy grid every
//!   update.
//!
//! The pair is the substrate of experiment E2 (Challenge 1, "Build
//! Bridges"): an architect who talks only to stale benchmarks accelerates
//! [`DenseScanSlam`]'s correlation loop, while the field has moved to sparse
//! filters — the accelerated kernel no longer dominates the deployed
//! pipeline.

mod dense;
mod ekf;
mod graph;
mod icp;
mod particle;

pub use dense::{synthetic_room_scan, DenseScanSlam, DenseSlamConfig, Scan};
pub use ekf::{EkfSlam, EkfSlamConfig, LandmarkObservation};
pub use graph::{PoseConstraint, PoseGraph, PoseGraphError};
pub use icp::{icp_align, IcpConfig, IcpResult};
pub use particle::{Particle, ParticleFilter, ParticleFilterConfig};
