//! Monte Carlo localization: a particle filter against a known occupancy
//! grid.
//!
//! The third localization formulation in the crate (next to the sparse
//! EKF and the dense correlation matcher). Its per-particle weight update
//! is embarrassingly parallel — the canonical accelerator-friendly
//! autonomy kernel — which is why it appears in the widgetism task suite
//! discussions.

use crate::geometry::{Pose2, Vec2};
use crate::grid::OccupancyGrid;
use crate::slam::Scan;
use m7_par::ParConfig;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the particle filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParticleFilterConfig {
    /// Number of particles.
    pub particles: usize,
    /// Translational motion noise per meter moved (std, meters).
    pub motion_noise_trans: f64,
    /// Rotational motion noise per radian turned (std, radians).
    pub motion_noise_rot: f64,
    /// Measurement model: std of expected-vs-measured range (meters).
    pub range_noise: f64,
    /// Beams subsampled from each scan for weighting.
    pub beams_used: usize,
}

impl Default for ParticleFilterConfig {
    fn default() -> Self {
        Self {
            particles: 500,
            motion_noise_trans: 0.1,
            motion_noise_rot: 0.05,
            range_noise: 0.3,
            beams_used: 20,
        }
    }
}

/// One pose hypothesis with its importance weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Particle {
    /// Hypothesized pose.
    pub pose: Pose2,
    /// Normalized importance weight.
    pub weight: f64,
}

/// Monte Carlo localization against a fixed occupancy-grid map.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::{Pose2, Vec2};
/// use m7_kernels::grid::OccupancyGrid;
/// use m7_kernels::slam::{ParticleFilter, ParticleFilterConfig};
///
/// let map = OccupancyGrid::new(20.0, 20.0, 0.25);
/// let start = Pose2::new(Vec2::new(10.0, 10.0), 0.0);
/// let pf = ParticleFilter::new(ParticleFilterConfig::default(), &map, start, 1.0, 7);
/// assert_eq!(pf.particles().len(), 500);
/// ```
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    config: ParticleFilterConfig,
    particles: Vec<Particle>,
    rng: rand_chacha::ChaCha8Rng,
    /// Cumulative particle×beam likelihood evaluations, for cost models.
    weight_evals: u64,
}

impl ParticleFilter {
    /// Creates a filter with particles scattered around `initial` with the
    /// given positional spread (meters), deterministic in `seed`.
    #[must_use]
    pub fn new(
        config: ParticleFilterConfig,
        map: &OccupancyGrid,
        initial: Pose2,
        spread: f64,
        seed: u64,
    ) -> Self {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let w = 1.0 / config.particles as f64;
        let particles = (0..config.particles)
            .map(|_| {
                let dx = rng.gen_range(-spread..=spread);
                let dy = rng.gen_range(-spread..=spread);
                let dth = rng.gen_range(-0.2..=0.2);
                let mut pose =
                    Pose2::new(initial.position + Vec2::new(dx, dy), initial.heading + dth);
                // Keep initial hypotheses inside the map.
                if map.cell_of(pose.position).is_none() {
                    pose = initial;
                }
                Particle { pose, weight: w }
            })
            .collect();
        Self { config, particles, rng, weight_evals: 0 }
    }

    /// The particle set.
    #[must_use]
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Cumulative likelihood evaluations performed so far.
    #[must_use]
    pub fn weight_evals(&self) -> u64 {
        self.weight_evals
    }

    /// Weighted mean pose estimate.
    #[must_use]
    pub fn estimate(&self) -> Pose2 {
        let mut x = 0.0;
        let mut y = 0.0;
        let mut sin = 0.0;
        let mut cos = 0.0;
        for p in &self.particles {
            x += p.weight * p.pose.position.x;
            y += p.weight * p.pose.position.y;
            sin += p.weight * p.pose.heading.sin();
            cos += p.weight * p.pose.heading.cos();
        }
        Pose2::new(Vec2::new(x, y), sin.atan2(cos))
    }

    /// Effective sample size — collapses toward 1 as weights concentrate.
    #[must_use]
    pub fn effective_sample_size(&self) -> f64 {
        let sum_sq: f64 = self.particles.iter().map(|p| p.weight * p.weight).sum();
        if sum_sq <= 0.0 {
            return 0.0;
        }
        1.0 / sum_sq
    }

    /// Motion update: propagates every particle through the odometry
    /// increment (body frame) with sampled noise.
    pub fn predict(&mut self, odometry: Pose2) {
        let trans = odometry.position.norm();
        let rot = odometry.heading.abs();
        let nt = self.config.motion_noise_trans * trans.max(0.01);
        let nr = self.config.motion_noise_rot * rot.max(0.01);
        for i in 0..self.particles.len() {
            let noisy = Pose2::new(
                odometry.position
                    + Vec2::new(self.rng.gen_range(-nt..=nt), self.rng.gen_range(-nt..=nt)),
                odometry.heading + self.rng.gen_range(-nr..=nr),
            );
            self.particles[i].pose = self.particles[i].pose.compose(noisy);
        }
    }

    /// Measurement update: reweights particles by the likelihood of `scan`
    /// given the map, then resamples systematically when the effective
    /// sample size drops below half the particle count.
    pub fn update(&mut self, map: &OccupancyGrid, scan: &Scan) {
        self.par_update(map, scan, ParConfig::serial());
    }

    /// Multi-threaded [`ParticleFilter::update`].
    ///
    /// Per-particle log-likelihoods are pure functions of the (fixed)
    /// particle set, map, and scan, so they run through the deterministic
    /// pool; weight application, normalization, and resampling stay serial
    /// in particle order. The filter state after this call is bit-identical
    /// to the serial update at any thread count.
    pub fn par_update(&mut self, map: &OccupancyGrid, scan: &Scan, par: ParConfig) {
        let step = (scan.bearings.len() / self.config.beams_used).max(1);
        let inv_two_var = 1.0 / (2.0 * self.config.range_noise * self.config.range_noise);
        let max_range = scan.ranges.iter().cloned().fold(0.0f64, f64::max) + 1.0;
        let beams_used = self.config.beams_used;

        // Phase 1 (parallel, read-only): one log-likelihood per particle,
        // written to its input-index slot.
        let log_likelihoods: Vec<f64> = par.par_map(&self.particles, |p| {
            let mut log_likelihood = 0.0;
            for (bearing, range) in
                scan.bearings.iter().zip(&scan.ranges).step_by(step).take(beams_used)
            {
                let angle = p.pose.heading + bearing;
                let dir = Vec2::new(angle.cos(), angle.sin());
                let expected = map
                    .raycast(p.pose.position, dir, max_range, 0.6)
                    .map_or(max_range, |hit| hit.distance(p.pose.position));
                let err = expected - range;
                log_likelihood -= err * err * inv_two_var;
            }
            log_likelihood
        });
        let beams_per_particle =
            scan.bearings.iter().zip(&scan.ranges).step_by(step).take(beams_used).count();
        self.weight_evals += (self.particles.len() * beams_per_particle) as u64;

        // Phase 2 (serial, particle order): apply weights and accumulate
        // the normalizer in the same order as the serial loop.
        let mut total = 0.0;
        for (p, log_likelihood) in self.particles.iter_mut().zip(&log_likelihoods) {
            p.weight *= log_likelihood.exp().max(1e-300);
            total += p.weight;
        }
        if total <= 0.0 {
            // Degenerate: reset to uniform rather than divide by zero.
            let w = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = w;
            }
            return;
        }
        for p in &mut self.particles {
            p.weight /= total;
        }
        if self.effective_sample_size() < self.particles.len() as f64 / 2.0 {
            self.resample();
        }
    }

    /// Systematic (low-variance) resampling.
    fn resample(&mut self) {
        let n = self.particles.len();
        let start: f64 = self.rng.gen_range(0.0..1.0 / n as f64);
        let mut out = Vec::with_capacity(n);
        let mut cumulative = self.particles[0].weight;
        let mut idx = 0;
        for k in 0..n {
            let u = start + k as f64 / n as f64;
            while u > cumulative && idx + 1 < n {
                idx += 1;
                cumulative += self.particles[idx].weight;
            }
            out.push(Particle { pose: self.particles[idx].pose, weight: 1.0 / n as f64 });
        }
        self.particles = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slam::synthetic_room_scan;

    /// Builds a mapped rectangular room and the matching ground truth.
    fn mapped_room() -> (OccupancyGrid, Vec2, f64, f64) {
        let center = Vec2::new(10.0, 10.0);
        let (half_w, half_h) = (7.0, 5.0);
        let mut map = OccupancyGrid::new(20.0, 20.0, 0.25);
        // Trace the walls into the map from several interior viewpoints.
        for &vp in &[
            center,
            center + Vec2::new(3.0, 2.0),
            center + Vec2::new(-3.0, -2.0),
            center + Vec2::new(4.0, -3.0),
        ] {
            for _ in 0..3 {
                let scan = synthetic_room_scan(Pose2::new(vp, 0.0), center, half_w, half_h, 180);
                for (b, r) in scan.bearings.iter().zip(&scan.ranges) {
                    let end = vp + Vec2::new(r * b.cos(), r * b.sin());
                    map.integrate_ray(vp, end, true);
                }
            }
        }
        (map, center, half_w, half_h)
    }

    #[test]
    fn initialization_spreads_particles() {
        let map = OccupancyGrid::new(20.0, 20.0, 0.5);
        let start = Pose2::new(Vec2::new(10.0, 10.0), 0.0);
        let pf = ParticleFilter::new(ParticleFilterConfig::default(), &map, start, 2.0, 1);
        let distinct =
            pf.particles().windows(2).filter(|w| w[0].pose.position != w[1].pose.position).count();
        assert!(distinct > 400, "particles should be spread, {distinct} distinct");
        let est = pf.estimate();
        assert!(est.position.distance(start.position) < 0.5, "mean near the prior");
    }

    #[test]
    fn tracking_converges_in_a_room() {
        let (map, center, half_w, half_h) = mapped_room();
        let mut truth = Pose2::new(center, 0.3);
        let config = ParticleFilterConfig { particles: 400, ..ParticleFilterConfig::default() };
        let mut pf = ParticleFilter::new(config, &map, truth, 1.5, 3);
        let step = Pose2::new(Vec2::new(0.3, 0.0), 0.05);
        for _ in 0..15 {
            truth = truth.compose(step);
            pf.predict(step);
            let scan = synthetic_room_scan(truth, center, half_w, half_h, 120);
            pf.update(&map, &scan);
        }
        let err = pf.estimate().position.distance(truth.position);
        assert!(err < 1.0, "MCL should track within 1 m, got {err}");
        assert!(pf.weight_evals() > 0);
    }

    #[test]
    fn weights_stay_normalized() {
        let (map, center, half_w, half_h) = mapped_room();
        let truth = Pose2::new(center, 0.0);
        let mut pf = ParticleFilter::new(ParticleFilterConfig::default(), &map, truth, 1.0, 5);
        let scan = synthetic_room_scan(truth, center, half_w, half_h, 120);
        pf.update(&map, &scan);
        let total: f64 = pf.particles().iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights must normalize, got {total}");
    }

    #[test]
    fn ess_drops_after_informative_update() {
        let (map, center, half_w, half_h) = mapped_room();
        let truth = Pose2::new(center, 0.0);
        let config = ParticleFilterConfig { particles: 300, ..ParticleFilterConfig::default() };
        let mut pf = ParticleFilter::new(config, &map, truth, 3.0, 9);
        let before = pf.effective_sample_size();
        assert!((before - 300.0).abs() < 1e-6, "uniform weights give full ESS");
        let scan = synthetic_room_scan(truth, center, half_w, half_h, 120);
        pf.update(&map, &scan);
        // Resampling may have restored uniformity; the eval counter proves
        // the weighting ran.
        assert!(pf.weight_evals() > 0);
    }

    #[test]
    fn par_update_is_bit_identical_to_serial() {
        let (map, center, half_w, half_h) = mapped_room();
        let truth = Pose2::new(center, 0.0);
        let run = |par: Option<ParConfig>| {
            let config = ParticleFilterConfig { particles: 200, ..ParticleFilterConfig::default() };
            let mut pf = ParticleFilter::new(config, &map, truth, 1.5, 11);
            let mut pose = truth;
            let step = Pose2::new(Vec2::new(0.25, 0.0), 0.04);
            for _ in 0..4 {
                pose = pose.compose(step);
                pf.predict(step);
                let scan = synthetic_room_scan(pose, center, half_w, half_h, 90);
                match par {
                    Some(p) => pf.par_update(&map, &scan, p),
                    None => pf.update(&map, &scan),
                }
            }
            (pf.particles().to_vec(), pf.weight_evals())
        };
        let serial = run(None);
        for threads in [1usize, 2, 4, 8] {
            let parallel = run(Some(ParConfig::with_threads(threads)));
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (map, center, half_w, half_h) = mapped_room();
        let truth = Pose2::new(center, 0.0);
        let run = || {
            let mut pf = ParticleFilter::new(ParticleFilterConfig::default(), &map, truth, 1.0, 11);
            let scan = synthetic_room_scan(truth, center, half_w, half_h, 90);
            pf.predict(Pose2::new(Vec2::new(0.2, 0.0), 0.0));
            pf.update(&map, &scan);
            pf.estimate()
        };
        assert_eq!(run(), run());
    }
}
