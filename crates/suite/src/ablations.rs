//! Ablations of the framework's own design choices, as promised in
//! DESIGN.md: each isolates one modeling decision and shows what the
//! results would claim without it.
//!
//! - [`dvfs_pareto`] — is a DVFS ladder enough to "pump the brakes", or
//!   does tier selection (E5) still matter? Produces the latency/energy
//!   Pareto front across operating points.
//! - [`contention_onoff`] — what would E10's scaling table claim if the
//!   shared bus were ignored (the "accelerators are free" assumption)?
//! - [`thermal_sustained`] — what does a throughput claim look like after
//!   ten minutes of sustained load on a passively cooled module?

use crate::report::{fmt_f64, Report, Table};
use m7_arch::contention::SharedBus;
use m7_arch::dvfs::ladder_sweep;
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_dse::pareto::pareto_front;
use m7_sim::thermal::{ThermalConfig, ThermalState};
use m7_units::{BytesPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Result of the DVFS ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsAblation {
    /// `(frequency scale, latency ms, energy mJ, on Pareto front)`.
    pub rows: Vec<(f64, f64, f64, bool)>,
}

/// Runs the DVFS ablation on the embedded GPU with the feature-extraction
/// workload.
#[must_use]
pub fn dvfs_pareto() -> DvfsAblation {
    let platform = Platform::preset(PlatformKind::Gpu);
    let kernel = KernelProfile::feature_extract(1280, 720);
    let sweep = ladder_sweep(&platform);
    let metrics: Vec<Vec<f64>> = sweep
        .iter()
        .map(|(_, p)| {
            let c = p.estimate(&kernel);
            vec![c.latency.as_millis(), c.energy.value() * 1e3]
        })
        .collect();
    let front = pareto_front(&metrics);
    let rows = sweep
        .iter()
        .zip(&metrics)
        .enumerate()
        .map(|(i, ((point, _), m))| (point.frequency_scale, m[0], m[1], front.contains(&i)))
        .collect();
    DvfsAblation { rows }
}

impl DvfsAblation {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("Ablation: DVFS ladder vs tier choice");
        let mut t = Table::new(
            "gpu-embedded operating points, 720p feature extraction",
            vec!["freq scale", "latency [ms]", "energy [mJ]", "pareto"],
        );
        for &(f, lat, e, on) in &self.rows {
            t.push_row(vec![fmt_f64(f), fmt_f64(lat), fmt_f64(e), on.to_string()]);
        }
        report.push_table(t);
        report.push_note(
            "DVFS spans part of the latency/energy trade space but cannot shed the board's \
             mass — the E5 mission still needs tier selection",
        );
        report
    }
}

/// Result of the contention on/off ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionAblation {
    /// `(accelerators, aggregate with contention, aggregate if 'free')`.
    pub rows: Vec<(usize, f64, f64)>,
}

/// Runs the contention on/off ablation.
#[must_use]
pub fn contention_onoff() -> ContentionAblation {
    let bus = SharedBus::new(BytesPerSecond::from_gigabytes_per_second(12.0));
    let per_unit = BytesPerSecond::from_gigabytes_per_second(4.0);
    let rows = (1..=8)
        .map(|n| {
            let (agg, _) = m7_arch::contention::scaling_under_contention(&bus, per_unit, n);
            (n, agg, n as f64)
        })
        .collect();
    ContentionAblation { rows }
}

impl ContentionAblation {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("Ablation: shared-bus contention on/off");
        let mut t = Table::new(
            "aggregate accelerator throughput (units of one uncontended accelerator)",
            vec!["accelerators", "with contention", "'accelerators are free'"],
        );
        for &(n, real, free) in &self.rows {
            t.push_row(vec![n.to_string(), fmt_f64(real), fmt_f64(free)]);
        }
        report.push_table(t);
        report.push_note(
            "ignoring the bus predicts linear scaling forever; the contended model \
             saturates at ~2 units — the delta is the size of the modeling error the \
             paper's Challenge 4 warns about",
        );
        report
    }
}

/// Result of the sustained-thermal ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalAblation {
    /// `(minute, junction °C, performance scale)`.
    pub rows: Vec<(usize, f64, f64)>,
    /// Performance after ten minutes relative to the first minute.
    pub sustained_fraction: f64,
}

/// Runs the sustained-thermal ablation: 40 W on a passively cooled module
/// for ten minutes.
#[must_use]
pub fn thermal_sustained() -> ThermalAblation {
    let mut state = ThermalState::new(ThermalConfig::default());
    let mut rows = Vec::new();
    for minute in 1..=10 {
        for _ in 0..60 {
            state.step(Watts::new(40.0), Seconds::new(1.0));
        }
        rows.push((minute, state.temperature_c(), state.performance_scale()));
    }
    let first = rows.first().expect("ten rows").2;
    let last = rows.last().expect("ten rows").2;
    ThermalAblation { rows, sustained_fraction: last / first }
}

impl ThermalAblation {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("Ablation: burst vs sustained thermal throughput");
        let mut t = Table::new(
            "40 W sustained on a passively cooled module",
            vec!["minute", "junction [C]", "performance scale"],
        );
        for &(m, temp, scale) in &self.rows {
            t.push_row(vec![m.to_string(), fmt_f64(temp), fmt_f64(scale)]);
        }
        report.push_table(t);
        report.push_note(format!(
            "a benchmark run in the first minute overstates sustained throughput by {:.0}% — \
             end-to-end models must include the thermal envelope (§3.1)",
            (1.0 / self.sustained_fraction - 1.0) * 100.0
        ));
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_front_is_nontrivial() {
        let a = dvfs_pareto();
        assert_eq!(a.rows.len(), 5);
        let on_front = a.rows.iter().filter(|r| r.3).count();
        assert!(on_front >= 2, "the ladder should expose a real trade-off");
        // Latency decreases with frequency.
        for w in a.rows.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn contention_gap_grows_with_units() {
        let a = contention_onoff();
        let gap = |row: &(usize, f64, f64)| row.2 - row.1;
        assert!(gap(&a.rows[7]) > gap(&a.rows[0]));
        assert!(a.rows[7].1 < 3.0, "contended aggregate saturates");
        assert_eq!(a.rows[7].2, 8.0, "'free' model claims linear scaling");
    }

    #[test]
    fn sustained_throughput_is_lower_than_burst() {
        let a = thermal_sustained();
        assert!(a.sustained_fraction < 0.8, "got {}", a.sustained_fraction);
        // Temperature is monotone non-decreasing under constant load.
        for w in a.rows.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9);
        }
    }

    #[test]
    fn reports_render() {
        assert!(dvfs_pareto().report().to_string().contains("pareto"));
        assert!(contention_onoff().report().to_string().contains("free"));
        assert!(thermal_sustained().report().to_string().contains("junction"));
    }
}
