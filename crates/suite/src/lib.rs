//! The `magseven` benchmark suite and experiment harness.
//!
//! Each of the paper's seven challenges (plus the DSE opportunity) maps to
//! a quantitative experiment `E1..E10`; see `DESIGN.md` at the repository
//! root for the full index. Every experiment:
//!
//! - is deterministic in an explicit seed,
//! - returns typed result rows, and
//! - renders a [`report::Report`] whose tables are the repository's
//!   equivalent of the paper's figures.
//!
//! # Examples
//!
//! ```
//! use m7_suite::experiments::ExperimentId;
//!
//! let report = ExperimentId::E1Growth.run(42);
//! assert!(!report.tables().is_empty());
//! println!("{report}");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod challenges;
pub mod experiments;
pub mod report;
pub mod workloads;
