//! ASCII report rendering: tables plus notes, the textual equivalent of
//! the paper's figures.

use serde::{Deserialize, Serialize};

/// One table of results.
///
/// # Examples
///
/// ```
/// use m7_suite::report::Table;
///
/// let mut t = Table::new("speedups", vec!["platform", "x"]);
/// t.push_row(vec!["cpu", "1.0"]);
/// t.push_row(vec!["gpu", "12.3"]);
/// let text = t.to_string();
/// assert!(text.contains("platform"));
/// assert!(text.contains("12.3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(title: impl Into<String>, headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// The value at `(row, col)`, if present.
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row).and_then(|r| r.get(col)).map(String::as_str)
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Column widths from headers and cells.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut core::fmt::Formatter<'_>, cells: &[String]| -> core::fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// A full experiment report: tables plus free-form findings.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    title: String,
    tables: Vec<Table>,
    notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    #[must_use]
    pub fn new(title: impl Into<String>) -> Self {
        Self { title: title.into(), tables: Vec::new(), notes: Vec::new() }
    }

    /// Report title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The tables.
    #[must_use]
    pub fn tables(&self) -> &[Table] {
        &self.tables
    }

    /// The notes.
    #[must_use]
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Finds a table by title.
    #[must_use]
    pub fn table(&self, title: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.title() == title)
    }
}

impl core::fmt::Display for Report {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "# {}", self.title)?;
        writeln!(f)?;
        for table in &self.tables {
            writeln!(f, "{table}")?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "### Notes")?;
            for note in &self.notes {
                writeln!(f, "- {note}")?;
            }
        }
        Ok(())
    }
}

/// Formats a float with three significant-looking decimals for tables.
#[must_use]
pub fn fmt_f64(value: f64) -> String {
    if !value.is_finite() {
        return if value.is_nan() { "nan".into() } else { "inf".into() };
    }
    if value == 0.0 {
        return "0".into();
    }
    let magnitude = value.abs();
    if magnitude >= 1000.0 {
        format!("{value:.0}")
    } else if magnitude >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let mut t = Table::new("demo", vec!["name", "value"]);
        t.push_row(vec!["short", "1"]);
        t.push_row(vec!["a-much-longer-name", "2"]);
        let s = t.to_string();
        assert!(s.contains("## demo"));
        // Both data lines have the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("bad", vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("experiment");
        let mut t = Table::new("t1", vec!["x"]);
        t.push_row(vec!["7"]);
        r.push_table(t);
        r.push_note("finding");
        assert_eq!(r.table("t1").unwrap().cell(0, 0), Some("7"));
        assert!(r.table("missing").is_none());
        let text = r.to_string();
        assert!(text.contains("# experiment"));
        assert!(text.contains("- finding"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.5), "1234");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        assert_eq!(fmt_f64(f64::NAN), "nan");
    }
}
