//! M7Bench: a standardized autonomy benchmark suite with system-level
//! scoring — the paper's "Standardized Benchmarks and Metrics"
//! opportunity (§3.2).
//!
//! Each workload names a deployable autonomy function, the kernel
//! pipeline it executes per input, and the input rate it must sustain.
//! [`score`] evaluates a platform against a workload with metrics the
//! paper endorses (keep-up at the sensor rate, latency, energy per input)
//! instead of raw TOPS, and [`suite_summary`] aggregates across the suite
//! so narrow widgets cannot hide (Challenge 3).

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::Platform;
use m7_arch::workload::KernelProfile;
use m7_units::{Hertz, Joules, Seconds};
use serde::{Deserialize, Serialize};

/// One standardized benchmark workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkWorkload {
    name: String,
    pipeline: Vec<KernelProfile>,
    /// Rate at which inputs arrive and must be fully processed.
    input_rate: Hertz,
    /// Latency bound for one input (control deadline).
    deadline: Seconds,
}

impl BenchmarkWorkload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline is empty or the rate/deadline are
    /// non-positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        pipeline: Vec<KernelProfile>,
        input_rate: Hertz,
        deadline: Seconds,
    ) -> Self {
        assert!(!pipeline.is_empty(), "a workload needs at least one kernel");
        assert!(input_rate.value() > 0.0, "input rate must be positive");
        assert!(deadline.value() > 0.0, "deadline must be positive");
        Self { name: name.into(), pipeline, input_rate, deadline }
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel pipeline per input.
    #[must_use]
    pub fn pipeline(&self) -> &[KernelProfile] {
        &self.pipeline
    }

    /// Required input rate.
    #[must_use]
    pub fn input_rate(&self) -> Hertz {
        self.input_rate
    }

    /// Per-input latency deadline.
    #[must_use]
    pub fn deadline(&self) -> Seconds {
        self.deadline
    }
}

/// The reference M7Bench suite: six deployable autonomy functions.
#[must_use]
pub fn m7bench() -> Vec<BenchmarkWorkload> {
    vec![
        BenchmarkWorkload::new(
            "obstacle-avoidance",
            vec![KernelProfile::collision_batch(100_000, 128), KernelProfile::ekf_update(23)],
            Hertz::new(30.0),
            Seconds::from_millis(25.0),
        ),
        BenchmarkWorkload::new(
            "visual-odometry",
            vec![KernelProfile::feature_extract(1920, 1080), KernelProfile::gemv(256, 256)],
            Hertz::new(30.0),
            Seconds::from_millis(33.0),
        ),
        BenchmarkWorkload::new(
            "manipulation-control",
            vec![KernelProfile::rnea(7), KernelProfile::gemv(64, 64)],
            Hertz::new(1000.0),
            Seconds::from_millis(1.0),
        ),
        BenchmarkWorkload::new(
            "global-replanning",
            vec![KernelProfile::collision_batch(500_000, 512)],
            Hertz::new(2.0),
            Seconds::from_millis(400.0),
        ),
        BenchmarkWorkload::new(
            "perception-dnn",
            vec![KernelProfile::dnn_inference(2.0e8, 2.0e8)],
            Hertz::new(60.0),
            Seconds::from_millis(15.0),
        ),
        BenchmarkWorkload::new(
            "localization-update",
            vec![KernelProfile::ekf_update(43), KernelProfile::gemv(128, 128)],
            Hertz::new(100.0),
            Seconds::from_millis(10.0),
        ),
    ]
}

/// The system-level score of one platform on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkScore {
    /// Workload name.
    pub workload: String,
    /// Per-input pipeline latency.
    pub latency: Seconds,
    /// Energy per input.
    pub energy: Joules,
    /// Whether the deadline is met.
    pub meets_deadline: bool,
    /// Whether back-to-back processing sustains the input rate.
    pub sustains_rate: bool,
}

impl BenchmarkScore {
    /// A workload *passes* only if both system requirements hold — the
    /// metric the paper wants instead of raw throughput.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.meets_deadline && self.sustains_rate
    }
}

/// Scores a platform against one workload.
#[must_use]
pub fn score(platform: &Platform, workload: &BenchmarkWorkload) -> BenchmarkScore {
    let cost = platform.estimate_pipeline(workload.pipeline());
    BenchmarkScore {
        workload: workload.name().to_string(),
        latency: cost.latency,
        energy: cost.energy,
        meets_deadline: cost.latency <= workload.deadline(),
        sustains_rate: cost.latency <= workload.input_rate().period(),
    }
}

/// Scores a platform across the whole suite and renders a report.
#[must_use]
pub fn suite_summary(platform: &Platform, suite: &[BenchmarkWorkload]) -> Report {
    let mut report = Report::new(format!("M7Bench: {}", platform.name()));
    let mut t = Table::new(
        "per-workload system-level results",
        vec!["workload", "latency [ms]", "energy [mJ]", "deadline", "rate", "pass"],
    );
    let mut passes = 0usize;
    for w in suite {
        let s = score(platform, w);
        if s.passes() {
            passes += 1;
        }
        t.push_row(vec![
            s.workload.clone(),
            fmt_f64(s.latency.as_millis()),
            fmt_f64(s.energy.value() * 1e3),
            s.meets_deadline.to_string(),
            s.sustains_rate.to_string(),
            s.passes().to_string(),
        ]);
    }
    report.push_table(t);
    report.push_note(format!("{passes}/{} workloads pass on {}", suite.len(), platform.name()));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_arch::platform::PlatformKind;

    #[test]
    fn reference_suite_is_well_formed() {
        let suite = m7bench();
        assert_eq!(suite.len(), 6);
        let mut names: Vec<&str> = suite.iter().map(BenchmarkWorkload::name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "workload names must be unique");
    }

    #[test]
    fn stronger_platforms_pass_more() {
        let suite = m7bench();
        let count = |kind| {
            let p = Platform::preset(kind);
            suite.iter().filter(|w| score(&p, w).passes()).count()
        };
        let scalar = count(PlatformKind::CpuScalar);
        let simd = count(PlatformKind::CpuSimd);
        let asic = count(PlatformKind::Asic);
        assert!(simd >= scalar);
        assert!(asic >= simd);
        assert!(scalar < suite.len(), "the scalar CPU must fail something");
        assert!(simd > 0, "SIMD passes at least one workload");
    }

    #[test]
    fn control_loop_punishes_dispatch_overhead() {
        // The 1 kHz manipulation loop: the GPU's 30 µs launch overhead is
        // fine, but its slow serial path for tiny kernels is the risk;
        // either way the score must reflect system requirements, not TOPS.
        let suite = m7bench();
        let control = suite.iter().find(|w| w.name() == "manipulation-control").unwrap();
        let gpu = score(&Platform::preset(PlatformKind::Gpu), control);
        let cpu = score(&Platform::preset(PlatformKind::CpuSimd), control);
        assert!(cpu.latency < gpu.latency, "tiny serial kernels favor the CPU");
    }

    #[test]
    fn score_fields_are_consistent() {
        let suite = m7bench();
        let p = Platform::preset(PlatformKind::Asic);
        for w in &suite {
            let s = score(&p, w);
            assert_eq!(s.passes(), s.meets_deadline && s.sustains_rate);
            assert!(s.latency.value() > 0.0);
            assert!(s.energy.value() > 0.0);
        }
    }

    #[test]
    fn summary_report_renders() {
        let report = suite_summary(&Platform::preset(PlatformKind::CpuSimd), &m7bench());
        assert!(report.to_string().contains("obstacle-avoidance"));
        assert!(report.notes()[0].contains("workloads pass"));
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_pipeline_rejected() {
        let _ = BenchmarkWorkload::new("bad", vec![], Hertz::new(1.0), Seconds::new(1.0));
    }
}
