//! E1 — the paper's Fig. 1: mentions of accelerators for autonomous
//! systems in top venues, 2014-2023.
//!
//! **Substitution.** We cannot query Google Scholar, and the figure's
//! observable is a *shape*: near-zero counts in 2014 rising super-linearly
//! to 2023. We regenerate it mechanistically with a logistic
//! field-adoption model (research interest saturating toward a carrying
//! capacity) driving a per-venue Poisson publication process.

use crate::report::{Report, Table};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// First year of the modeled window (matching Fig. 1's x-axis).
pub const FIRST_YEAR: u32 = 2014;
/// Last year of the modeled window.
pub const LAST_YEAR: u32 = 2023;

/// Parameters of the bibliometric model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthModel {
    /// Carrying capacity: mentions per year once the field matures.
    pub capacity: f64,
    /// Logistic growth rate per year.
    pub rate: f64,
    /// Inflection year of adoption.
    pub midpoint: f64,
    /// Number of publishing venues (Poisson arrivals are summed across
    /// venues).
    pub venues: usize,
}

impl Default for GrowthModel {
    fn default() -> Self {
        Self { capacity: 140.0, rate: 0.65, midpoint: 2020.0, venues: 12 }
    }
}

impl GrowthModel {
    /// Expected mentions in `year` under the logistic adoption curve.
    #[must_use]
    pub fn expected(&self, year: u32) -> f64 {
        let t = f64::from(year);
        self.capacity / (1.0 + (-self.rate * (t - self.midpoint)).exp())
    }

    /// Draws the yearly counts, deterministic in `seed`.
    #[must_use]
    pub fn sample_series(&self, seed: u64) -> Vec<(u32, u64)> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (FIRST_YEAR..=LAST_YEAR)
            .map(|year| {
                let lambda_per_venue = self.expected(year) / self.venues as f64;
                let total: u64 =
                    (0..self.venues).map(|_| poisson(&mut rng, lambda_per_venue)).sum();
                (year, total)
            })
            .collect()
    }
}

/// Knuth's Poisson sampler (adequate for the small per-venue rates here).
fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// The E1 result: the yearly publication-mention series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrowthResult {
    /// Yearly `(year, mentions)` counts.
    pub series: Vec<(u32, u64)>,
    /// Ratio of the last to the first nonzero year's count.
    pub growth_factor: f64,
}

impl GrowthResult {
    /// Renders the Fig. 1 equivalent.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E1 — publication growth (paper Fig. 1)");
        let mut t = Table::new("mentions per year", vec!["year", "mentions"]);
        for &(year, n) in &self.series {
            t.push_row(vec![year.to_string(), n.to_string()]);
        }
        report.push_table(t);
        report.push_note(format!(
            "growth factor {:.1}x from {FIRST_YEAR} to {LAST_YEAR} (paper shape: steep monotone rise)",
            self.growth_factor
        ));
        report
    }
}

/// Runs E1 with the default model.
#[must_use]
pub fn run(seed: u64) -> GrowthResult {
    let model = GrowthModel::default();
    let series = model.sample_series(seed);
    let first = series.iter().find(|(_, n)| *n > 0).map_or(1, |&(_, n)| n.max(1));
    let last = series.last().map_or(0, |&(_, n)| n);
    GrowthResult { series, growth_factor: last as f64 / first as f64 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_curve_is_increasing_and_saturating() {
        let m = GrowthModel::default();
        let mut prev = 0.0;
        for year in FIRST_YEAR..=LAST_YEAR {
            let e = m.expected(year);
            assert!(e > prev, "logistic is increasing");
            prev = e;
        }
        assert!(m.expected(2035) < m.capacity);
        assert!(m.expected(2035) > 0.95 * m.capacity, "saturates toward capacity");
    }

    #[test]
    fn series_reproduces_growth_shape() {
        let r = run(42);
        assert_eq!(r.series.len(), 10);
        // Early years are tiny compared to late years.
        let early: u64 = r.series[..3].iter().map(|&(_, n)| n).sum();
        let late: u64 = r.series[7..].iter().map(|&(_, n)| n).sum();
        assert!(late > early * 5, "late {late} vs early {early}");
        assert!(r.growth_factor > 5.0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).series, run(8).series);
    }

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean = (0..n).map(|_| poisson(&mut rng, 4.0)).sum::<u64>() as f64 / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "got {mean}");
    }

    #[test]
    fn zero_lambda_yields_zero() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn report_has_ten_rows() {
        let report = run(1).report();
        assert_eq!(report.tables()[0].rows().len(), 10);
    }
}
