//! E7 — Challenge 6, "Forest vs. Trees": the end-to-end view.
//!
//! Sweeps an idealized kernel-stage speedup from 1× to 1000× through the
//! full sensor → marshalling → kernel → actuation pipeline, under a lean
//! and a heavy data-movement ("AI tax") configuration. End-to-end gain
//! flattens at the Amdahl ceiling; with a heavy tax the ceiling collapses
//! toward 1×.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_sim::pipeline::Pipeline;
use m7_sim::sensor::{SensorKind, SensorSpec};
use m7_units::{Bytes, BytesPerSecond, Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// Kernel-speedup sweep points.
pub const SPEEDUPS: [f64; 7] = [1.0, 2.0, 5.0, 10.0, 50.0, 100.0, 1000.0];

/// The E7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEndResult {
    /// `(kernel speedup, lean end-to-end gain, heavy-tax end-to-end gain)`.
    pub rows: Vec<(f64, f64, f64)>,
    /// Compute fraction of the lean pipeline at 1×.
    pub lean_compute_fraction: f64,
    /// Compute fraction of the heavy-tax pipeline at 1×.
    pub taxed_compute_fraction: f64,
}

impl EndToEndResult {
    /// Amdahl ceiling implied by a compute fraction.
    #[must_use]
    pub fn ceiling(fraction: f64) -> f64 {
        1.0 / (1.0 - fraction)
    }

    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E7 — forest vs. trees: end-to-end speedup (§2.6)");
        let mut t = Table::new(
            "end-to-end gain vs kernel-only speedup",
            vec!["kernel speedup", "lean pipeline", "heavy AI-tax pipeline"],
        );
        for &(k, lean, taxed) in &self.rows {
            t.push_row(vec![fmt_f64(k), fmt_f64(lean), fmt_f64(taxed)]);
        }
        report.push_table(t);
        report.push_note(format!(
            "Amdahl ceilings: lean {:.1}x (compute fraction {:.2}), heavy tax {:.1}x \
             (compute fraction {:.2}) — accelerating the kernel 1000x cannot beat either",
            Self::ceiling(self.lean_compute_fraction),
            self.lean_compute_fraction,
            Self::ceiling(self.taxed_compute_fraction),
            self.taxed_compute_fraction,
        ));
        report
    }
}

fn full_hd_sensor() -> SensorSpec {
    SensorSpec::new(SensorKind::Camera, Hertz::new(30.0), Bytes::new(1920.0 * 1080.0), 2.0)
}

/// The lean pipeline: fast copy path, modest overheads, kernel-dominated
/// (the scenario accelerator pitches assume).
#[must_use]
pub fn lean_pipeline() -> Pipeline {
    Pipeline::new(
        full_hd_sensor(),
        Platform::preset(PlatformKind::CpuScalar),
        KernelProfile::feature_extract(1920, 1080),
    )
    .with_marshalling(BytesPerSecond::from_gigabytes_per_second(8.0), Seconds::from_millis(0.2))
}

/// The heavy-tax pipeline: slow serialization path and driver overheads —
/// the datacenter "AI tax" shape at the edge.
#[must_use]
pub fn taxed_pipeline() -> Pipeline {
    Pipeline::new(
        full_hd_sensor(),
        Platform::preset(PlatformKind::CpuScalar),
        KernelProfile::feature_extract(1920, 1080),
    )
    .with_marshalling(BytesPerSecond::from_gigabytes_per_second(0.1), Seconds::from_millis(5.0))
}

/// Runs E7.
#[must_use]
pub fn run() -> EndToEndResult {
    let lean = lean_pipeline();
    let taxed = taxed_pipeline();
    let rows = SPEEDUPS
        .iter()
        .map(|&k| (k, lean.end_to_end_speedup(k), taxed.end_to_end_speedup(k)))
        .collect();
    EndToEndResult {
        rows,
        lean_compute_fraction: lean.latency_budget().compute_fraction(),
        taxed_compute_fraction: taxed.latency_budget().compute_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gains_respect_amdahl() {
        let r = run();
        let lean_ceiling = EndToEndResult::ceiling(r.lean_compute_fraction);
        let taxed_ceiling = EndToEndResult::ceiling(r.taxed_compute_fraction);
        for &(k, lean, taxed) in &r.rows {
            assert!(lean <= lean_ceiling + 1e-9, "k={k}");
            assert!(taxed <= taxed_ceiling + 1e-9, "k={k}");
            assert!(lean <= k + 1e-9, "end-to-end cannot beat the kernel speedup itself");
        }
    }

    #[test]
    fn gains_are_monotone_but_saturating() {
        let r = run();
        for w in r.rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
        // Marginal gain from 100x → 1000x is small.
        let at_100 = r.rows[5].1;
        let at_1000 = r.rows[6].1;
        assert!(at_1000 / at_100 < 1.5, "saturation: {at_100} → {at_1000}");
    }

    #[test]
    fn tax_collapses_the_ceiling() {
        let r = run();
        assert!(r.taxed_compute_fraction < r.lean_compute_fraction);
        let (_, lean_1000, taxed_1000) = r.rows[6];
        assert!(
            taxed_1000 < lean_1000 / 2.0,
            "heavy tax should at least halve the achievable gain: {taxed_1000} vs {lean_1000}"
        );
        assert!(taxed_1000 < 3.0, "1000x kernel under heavy tax stays under 3x end-to-end");
    }

    #[test]
    fn report_renders_all_sweep_points() {
        let text = run().report().to_string();
        assert!(text.contains("1000"));
        assert!(text.contains("Amdahl"));
    }
}
