//! E3 — Challenge 2, "Metrics Matter": the MLPerf lesson.
//!
//! Dropping weight precision raises the modeled accelerator throughput
//! monotonically (quantized training steps stream fewer bytes). But the
//! *task* metric — wall-clock time until the model reaches a target
//! accuracy — ranks the precisions differently, because aggressive
//! quantization needs more epochs or never converges. A designer who
//! optimizes raw throughput ships the int2 design; a designer who measures
//! time-to-accuracy ships int8/int16.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_kernels::dnn::{Dataset, Mlp, Precision};
use m7_units::Seconds;
use serde::{Deserialize, Serialize};

/// Per-precision measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRow {
    /// Weight precision.
    pub precision: String,
    /// Modeled training-step throughput (steps/s) on the accelerator.
    pub steps_per_second: f64,
    /// Epochs of quantization-aware training needed to hit the target
    /// accuracy (`None` = never reached).
    pub epochs_to_target: Option<usize>,
    /// Wall-clock time to the target accuracy (`None` = never).
    pub time_to_accuracy: Option<f64>,
    /// Final accuracy after the training budget.
    pub final_accuracy: f64,
}

/// The E3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResult {
    /// One row per precision, highest to lowest.
    pub rows: Vec<PrecisionRow>,
    /// Precision with the best raw throughput.
    pub throughput_winner: String,
    /// Precision with the best time-to-accuracy.
    pub time_to_accuracy_winner: String,
}

impl MetricsResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E3 — metrics matter: throughput vs time-to-accuracy (§2.2)");
        let mut t = Table::new(
            "precision sweep",
            vec![
                "precision",
                "steps/s (modeled)",
                "epochs to 95%",
                "time-to-accuracy [s]",
                "final accuracy",
            ],
        );
        for row in &self.rows {
            t.push_row(vec![
                row.precision.clone(),
                fmt_f64(row.steps_per_second),
                row.epochs_to_target.map_or_else(|| "never".to_string(), |e| e.to_string()),
                row.time_to_accuracy.map_or_else(|| "inf".to_string(), fmt_f64),
                fmt_f64(row.final_accuracy),
            ]);
        }
        report.push_table(t);
        report.push_note(format!(
            "raw-throughput winner: {}; time-to-accuracy winner: {} — the two metrics \
             disagree, exactly the paper's warning",
            self.throughput_winner, self.time_to_accuracy_winner
        ));
        report
    }
}

/// Runs E3: an 8-class classification task trained quantization-aware at
/// every precision, with step throughput modeled on the ASIC preset.
#[must_use]
pub fn run(seed: u64) -> MetricsResult {
    let data = Dataset::blobs(100, 8, 2, seed);
    let target = 0.95;
    let max_epochs = 150;
    let accelerator = Platform::preset(PlatformKind::Asic);
    let template = Mlp::new(&[2, 16, 8], seed ^ 0x5EED);

    let rows: Vec<PrecisionRow> = Precision::ALL
        .iter()
        .map(|&precision| {
            // Modeled step cost: forward+backward ≈ 3× inference MACs; the
            // weight traffic shrinks with precision (the throughput "win").
            let profile = KernelProfile::dnn_inference(
                3.0 * template.macs_per_inference(),
                3.0 * template.weight_bytes(precision),
            );
            let step_latency: Seconds = accelerator.estimate(&profile).latency;
            let steps_per_second = 1.0 / step_latency.value();

            let mut model = template.clone();
            let epochs_to_target =
                model.epochs_to_accuracy(&data, target, 0.05, precision, max_epochs);
            let steps_per_epoch = data.len() as f64;
            let time_to_accuracy =
                epochs_to_target.map(|e| e as f64 * steps_per_epoch * step_latency.value());
            PrecisionRow {
                precision: precision.to_string(),
                steps_per_second,
                epochs_to_target,
                time_to_accuracy,
                final_accuracy: model.accuracy(&data, precision),
            }
        })
        .collect();

    let throughput_winner = rows
        .iter()
        .max_by(|a, b| {
            a.steps_per_second.partial_cmp(&b.steps_per_second).expect("finite throughput")
        })
        .expect("nonempty rows")
        .precision
        .clone();
    let time_to_accuracy_winner = rows
        .iter()
        .filter(|r| r.time_to_accuracy.is_some())
        .min_by(|a, b| a.time_to_accuracy.partial_cmp(&b.time_to_accuracy).expect("finite times"))
        .expect("at least one precision converges")
        .precision
        .clone();
    MetricsResult { rows, throughput_winner, time_to_accuracy_winner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_increases_as_precision_drops() {
        let r = run(3);
        for w in r.rows.windows(2) {
            assert!(
                w[1].steps_per_second >= w[0].steps_per_second,
                "{} -> {} should not reduce modeled throughput",
                w[0].precision,
                w[1].precision
            );
        }
    }

    #[test]
    fn metrics_disagree() {
        let r = run(3);
        assert_ne!(
            r.throughput_winner, r.time_to_accuracy_winner,
            "the whole point: raw throughput and time-to-accuracy pick different designs"
        );
        assert_eq!(r.throughput_winner, "int2", "lowest precision streams fewest bytes");
    }

    #[test]
    fn int2_never_reaches_target() {
        let r = run(3);
        let int2 = r.rows.iter().find(|row| row.precision == "int2").unwrap();
        assert!(int2.time_to_accuracy.is_none());
        assert!(int2.final_accuracy < 0.95);
    }

    #[test]
    fn f32_reaches_target() {
        let r = run(3);
        let f32_row = r.rows.iter().find(|row| row.precision == "f32").unwrap();
        assert!(f32_row.epochs_to_target.is_some());
        assert!(f32_row.final_accuracy >= 0.95);
    }

    #[test]
    fn report_renders_every_precision() {
        let text = run(3).report().to_string();
        for p in ["f32", "int16", "int8", "int4", "int2"] {
            assert!(text.contains(p), "missing {p}");
        }
    }
}
