//! E13 — measured vs modeled roofline for the vectorized autonomy kernels.
//!
//! PR 6 reworked four kernel hot loops into SIMD-friendly lane form
//! (batched collision, BRIEF descriptor matching, dense scan correlation,
//! MLP inference). This experiment closes the loop called for by §2.5:
//! place each kernel's analytic FLOP/byte footprint on the `m7-arch`
//! roofline presets and report where the model says the ceiling is —
//! then, in measured mode, check the host against it.
//!
//! Two parts, following the E6 [`Timing`] convention:
//!
//! 1. **Modeled (always, deterministic).** Pure functions of the kernel
//!    profiles: arithmetic intensity, the attainable GFLOP/s ceiling on
//!    the cpu-scalar and cpu-simd presets, memory-vs-compute bound
//!    classification, and the cost-model speedup of cpu-simd over
//!    cpu-scalar. This is the half that lands in the golden report.
//! 2. **Measured (wall clock, diagnostic-only).** Small lane-vs-scalar
//!    timings of the real kernels on the host. The speedups are rendered
//!    in an extra table and exported as *diagnostic-class* trace gauges,
//!    so deterministic metric dumps and the golden suite never see them.
//!    The full-size harness lives in `m7-bench` (`examples/roofline_report`
//!    → `BENCH_roofline.json`); this section is its smoke-scale twin.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::roofline::Roofline;
use m7_arch::workload::KernelProfile;
use m7_kernels::dnn::{Mlp, MlpScratch, Precision};
use m7_kernels::geometry::{Pose2, Vec2};
use m7_kernels::perception::{Descriptor, FeatureFrontEnd};
use m7_kernels::planning::CollisionWorld;
use m7_kernels::slam::{synthetic_room_scan, DenseScanSlam, DenseSlamConfig};
use m7_trace::{MetricClass, TraceGauge};
use m7_units::OpsPerByte;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use super::Timing;

// Diagnostic-class gauges: host wall-clock lane-vs-scalar speedups in
// milli-x (2.4x → 2400). Diagnostic metrics are excluded from
// deterministic dumps, so recording them never perturbs golden output.
static COLLISION_SPEEDUP: TraceGauge =
    TraceGauge::new("e13.measured.collision_speedup_milli", MetricClass::Diagnostic);
static MATCHER_SPEEDUP: TraceGauge =
    TraceGauge::new("e13.measured.matcher_speedup_milli", MetricClass::Diagnostic);
static CORRELATION_SPEEDUP: TraceGauge =
    TraceGauge::new("e13.measured.correlation_speedup_milli", MetricClass::Diagnostic);
static DNN_SPEEDUP: TraceGauge =
    TraceGauge::new("e13.measured.dnn_speedup_milli", MetricClass::Diagnostic);

/// Modeled roofline placement of one kernel on both CPU presets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineRow {
    /// Kernel profile name (e.g. `collision-batch-2048x256`).
    pub kernel: String,
    /// Kernel family label.
    pub family: String,
    /// Arithmetic intensity (flop per byte).
    pub intensity: f64,
    /// Attainable GFLOP/s under the cpu-scalar roofline.
    pub scalar_ceiling_gflops: f64,
    /// Whether cpu-scalar pins this kernel against its bandwidth roof.
    pub scalar_memory_bound: bool,
    /// Attainable GFLOP/s under the cpu-simd roofline.
    pub simd_ceiling_gflops: f64,
    /// Whether cpu-simd pins this kernel against its bandwidth roof.
    pub simd_memory_bound: bool,
    /// Cost-model latency ratio cpu-scalar / cpu-simd.
    pub modeled_speedup: f64,
}

/// One measured lane-vs-scalar timing (wall clock, nondeterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRow {
    /// Kernel label.
    pub kernel: String,
    /// Lane-path wall time (ms).
    pub lane_ms: f64,
    /// Scalar-reference wall time (ms).
    pub scalar_ms: f64,
    /// Whether the lane path reproduced the scalar output bit for bit.
    pub agrees: bool,
}

impl MeasuredRow {
    /// Wall-clock speedup of the lane path over the scalar reference.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.scalar_ms / self.lane_ms
    }
}

/// The E13 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineResult {
    /// Where the measured table (if any) came from.
    pub timing: Timing,
    /// Modeled placement of the four vectorized kernels.
    pub rows: Vec<RooflineRow>,
    /// cpu-scalar ridge point (flop per byte).
    pub ridge_scalar: f64,
    /// cpu-simd ridge point (flop per byte).
    pub ridge_simd: f64,
    /// Host lane-vs-scalar timings; empty under [`Timing::Modeled`].
    pub measured: Vec<MeasuredRow>,
}

impl RooflineResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report =
            Report::new("E13 — measured vs modeled roofline for vectorized kernels (§2.5)");
        let mut t = Table::new(
            "modeled: kernel placement on the cpu-scalar and cpu-simd rooflines",
            vec![
                "kernel",
                "family",
                "ai [flop/B]",
                "scalar ceil [GFLOP/s]",
                "scalar bound",
                "simd ceil [GFLOP/s]",
                "simd bound",
                "modeled speedup",
            ],
        );
        for row in &self.rows {
            t.push_row(vec![
                row.kernel.clone(),
                row.family.clone(),
                fmt_f64(row.intensity),
                fmt_f64(row.scalar_ceiling_gflops),
                bound_label(row.scalar_memory_bound).to_string(),
                fmt_f64(row.simd_ceiling_gflops),
                bound_label(row.simd_memory_bound).to_string(),
                fmt_f64(row.modeled_speedup),
            ]);
        }
        report.push_table(t);
        report.push_note(format!(
            "ridge points: cpu-scalar {} flop/B, cpu-simd {} flop/B; kernels right of the \
             ridge are compute-bound, so wider lanes (not more bandwidth) buy throughput",
            fmt_f64(self.ridge_scalar),
            fmt_f64(self.ridge_simd)
        ));

        if self.timing == Timing::Measured {
            let mut m = Table::new(
                "measured: lane vs scalar wall clock on this host (diagnostic, smoke scale)",
                vec!["kernel", "lane [ms]", "scalar [ms]", "speedup", "bit-identical"],
            );
            for row in &self.measured {
                m.push_row(vec![
                    row.kernel.clone(),
                    fmt_f64(row.lane_ms),
                    fmt_f64(row.scalar_ms),
                    fmt_f64(row.speedup()),
                    if row.agrees { "yes" } else { "NO" }.to_string(),
                ]);
            }
            report.push_table(m);
            report.push_note(
                "wall-clock rows vary run to run and are exported as diagnostic-class trace \
                 gauges only; the full-size harness is `cargo run --release --example \
                 roofline_report` (BENCH_roofline.json)",
            );
        }
        report
    }
}

fn bound_label(memory_bound: bool) -> &'static str {
    if memory_bound {
        "memory"
    } else {
        "compute"
    }
}

/// The four vectorized-kernel profiles at full-harness sizes. Pure
/// function of nothing — the modeled half of E13 is seed-free.
fn modeled_profiles() -> Vec<KernelProfile> {
    // Same MLP shape as the m7-bench harness; MAC and weight-byte counts
    // are architecture-only, so no training is needed for the profile.
    let widths = [8usize, 64, 64, 6];
    let mlp = Mlp::new(&widths, 0);
    let batch = 256.0;
    vec![
        KernelProfile::collision_batch(2048, 256),
        KernelProfile::descriptor_match(512, 512),
        KernelProfile::correlation_scan(9261, 90),
        KernelProfile::dnn_inference(
            mlp.macs_per_inference() * batch,
            mlp.weight_bytes(Precision::Int8) * batch,
        ),
    ]
}

fn modeled_row(profile: &KernelProfile) -> RooflineRow {
    let scalar = Platform::preset(PlatformKind::CpuScalar);
    let simd = Platform::preset(PlatformKind::CpuSimd);
    let ai = profile.arithmetic_intensity();
    let ceiling = |roofline: Roofline, ai: OpsPerByte| roofline.attainable(ai).value() / 1e9;
    RooflineRow {
        kernel: profile.name().to_string(),
        family: profile.family().to_string(),
        intensity: ai.value(),
        scalar_ceiling_gflops: ceiling(scalar.roofline(), ai),
        scalar_memory_bound: scalar.roofline().is_memory_bound(ai),
        simd_ceiling_gflops: ceiling(simd.roofline(), ai),
        simd_memory_bound: simd.roofline().is_memory_bound(ai),
        modeled_speedup: scalar.estimate(profile).latency / simd.estimate(profile).latency,
    }
}

/// Times `f` once after one warm-up call, in milliseconds.
fn time_ms(mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

/// Smoke-scale host timings of the four lane kernels against their scalar
/// references. Sizes are deliberately tiny: the point is the diagnostic
/// signal (and the bit-identity check), not benchmark-grade numbers.
fn measure_host(seed: u64) -> Vec<MeasuredRow> {
    let mut rows = Vec::new();

    // Batched segment collision: short PRM-style edges in a scattered world.
    let mut world = CollisionWorld::new(40.0, 40.0);
    world.scatter_circles(64, 0.2, 1.0, seed);
    let checker = world.to_batch_checker();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xE13);
    let edges: Vec<(Vec2, Vec2)> = (0..128)
        .map(|_| {
            let from = Vec2::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0));
            (from, from + Vec2::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
        })
        .collect();
    let lane_ms = time_ms(|| {
        std::hint::black_box(checker.segments_free(std::hint::black_box(&edges)));
    });
    let scalar_ms = time_ms(|| {
        std::hint::black_box(checker.segments_free_scalar(std::hint::black_box(&edges)));
    });
    let agrees = checker.segments_free(&edges) == checker.segments_free_scalar(&edges);
    let row = MeasuredRow { kernel: "collision-segments".into(), lane_ms, scalar_ms, agrees };
    COLLISION_SPEEDUP.set((row.speedup() * 1e3) as u64);
    rows.push(row);

    // BRIEF descriptor matching.
    let mut gen_set = |n: usize| -> Vec<Descriptor> {
        (0..n).map(|_| Descriptor([rng.gen(), rng.gen(), rng.gen(), rng.gen()])).collect()
    };
    let (a, b) = (gen_set(64), gen_set(64));
    let lane_ms = time_ms(|| {
        std::hint::black_box(FeatureFrontEnd::match_descriptors_planes(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    });
    let scalar_ms = time_ms(|| {
        std::hint::black_box(FeatureFrontEnd::match_descriptors_scalar(
            std::hint::black_box(&a),
            std::hint::black_box(&b),
        ));
    });
    let agrees = FeatureFrontEnd::match_descriptors_planes(&a, &b)
        == FeatureFrontEnd::match_descriptors_scalar(&a, &b);
    let row = MeasuredRow { kernel: "brief-match".into(), lane_ms, scalar_ms, agrees };
    MATCHER_SPEEDUP.set((row.speedup() * 1e3) as u64);
    rows.push(row);

    // Dense correlation scan matching in a small search window.
    let config =
        DenseSlamConfig { window_trans: 0.1, window_rot: 0.06, ..DenseSlamConfig::default() };
    let room_center = Vec2::new(15.0, 15.0);
    let mut slam = DenseScanSlam::new(config, 30.0, 30.0, 0.25);
    let start = Pose2::new(room_center, 0.0);
    let scan0 = synthetic_room_scan(start, room_center, 10.0, 8.0, 30);
    slam.step(Pose2::identity(), &scan0);
    slam.step(Pose2::identity(), &scan0);
    let prior = Pose2::new(room_center + Vec2::new(0.05, -0.03), 0.01);
    let scan = synthetic_room_scan(prior, room_center, 10.0, 8.0, 30);
    let lane_ms = time_ms(|| {
        std::hint::black_box(slam.match_scan(std::hint::black_box(prior), &scan));
    });
    let scalar_ms = time_ms(|| {
        std::hint::black_box(slam.match_scan_reference(std::hint::black_box(prior), &scan));
    });
    let agrees = slam.match_scan(prior, &scan) == slam.match_scan_reference(prior, &scan);
    let row = MeasuredRow { kernel: "dense-correlation".into(), lane_ms, scalar_ms, agrees };
    CORRELATION_SPEEDUP.set((row.speedup() * 1e3) as u64);
    rows.push(row);

    // Batched MLP inference (Int8 quantized path).
    let widths = [8usize, 32, 32, 6];
    let mlp = Mlp::new(&widths, seed);
    let batch = 64;
    let inputs: Vec<f64> = (0..batch * widths[0]).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let mut scratch = MlpScratch::default();
    let lane_ms = time_ms(|| {
        std::hint::black_box(mlp.forward_batch_into(
            std::hint::black_box(&inputs),
            Precision::Int8,
            &mut scratch,
        ));
    });
    let scalar_ms = time_ms(|| {
        for s in 0..batch {
            std::hint::black_box(mlp.forward_reference(
                std::hint::black_box(&inputs[s * widths[0]..(s + 1) * widths[0]]),
                Precision::Int8,
            ));
        }
    });
    let batched = mlp.forward_batch_into(&inputs, Precision::Int8, &mut scratch).to_vec();
    let agrees =
        (0..batch).all(|s| {
            batched[s * widths[3]..(s + 1) * widths[3]]
                == mlp
                    .forward_reference(&inputs[s * widths[0]..(s + 1) * widths[0]], Precision::Int8)
                    [..]
        });
    let row = MeasuredRow { kernel: "dnn-inference".into(), lane_ms, scalar_ms, agrees };
    DNN_SPEEDUP.set((row.speedup() * 1e3) as u64);
    rows.push(row);

    rows
}

/// Runs E13 with host timings for the measured table (library default).
#[must_use]
pub fn run(seed: u64) -> RooflineResult {
    run_with(seed, Timing::Measured)
}

/// Runs E13. With [`Timing::Modeled`] the result is a pure function of
/// the kernel profiles — the seed only feeds the measured workloads, so
/// modeled output is identical for every seed and thread count.
#[must_use]
pub fn run_with(seed: u64, timing: Timing) -> RooflineResult {
    let profiles = modeled_profiles();
    let rows = profiles.iter().map(modeled_row).collect();
    let measured = match timing {
        Timing::Measured => measure_host(seed),
        Timing::Modeled => Vec::new(),
    };
    RooflineResult {
        timing,
        rows,
        ridge_scalar: Platform::preset(PlatformKind::CpuScalar).roofline().ridge_point().value(),
        ridge_simd: Platform::preset(PlatformKind::CpuSimd).roofline().ridge_point().value(),
        measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_half_is_seed_free_and_deterministic() {
        let a = run_with(1, Timing::Modeled);
        let b = run_with(99, Timing::Modeled);
        assert_eq!(a, b, "modeled roofline must not depend on the seed");
        assert_eq!(a.report().to_string(), b.report().to_string());
        assert!(a.measured.is_empty(), "modeled mode must not touch the wall clock");
    }

    #[test]
    fn modeled_rows_cover_all_four_kernels_with_sane_ceilings() {
        let r = run_with(42, Timing::Modeled);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(row.intensity > 0.0, "{}: intensity must be positive", row.kernel);
            assert!(
                row.simd_ceiling_gflops >= row.scalar_ceiling_gflops,
                "{}: the simd roof cannot be below the scalar roof",
                row.kernel
            );
            assert!(
                row.modeled_speedup >= 1.0,
                "{}: the cost model must not rank cpu-simd behind cpu-scalar",
                row.kernel
            );
        }
        assert!(r.ridge_simd > r.ridge_scalar, "wider lanes need more intensity to saturate");
    }

    #[test]
    fn measured_mode_adds_the_host_table_and_lane_paths_agree() {
        let r = run(42);
        assert_eq!(r.measured.len(), 4);
        for row in &r.measured {
            assert!(row.agrees, "{}: lane path diverged from scalar reference", row.kernel);
            assert!(row.lane_ms > 0.0 && row.scalar_ms > 0.0);
        }
        let text = r.report().to_string();
        assert!(text.contains("measured"));
        assert!(text.contains("bit-identical"));
    }

    #[test]
    fn modeled_report_omits_wall_clock_rows() {
        let text = run_with(42, Timing::Modeled).report().to_string();
        assert!(text.contains("modeled"));
        assert!(!text.contains("on this host"));
    }
}
