//! E5 — Challenge 4, "Pump the Brakes": the UAV compute-tier sweep.
//!
//! Reproduces the cited co-design result: mission energy per meter is
//! U-shaped in onboard compute capability, and over-provisioned compute
//! fails long missions outright through mass and power.

use crate::report::{fmt_f64, Report, Table};
use m7_sim::mission::MissionSpec;
use m7_sim::uav::{ComputeTier, Uav, UavConfig};
use serde::{Deserialize, Serialize};

/// Per-tier mission outcome summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierRow {
    /// The compute tier.
    pub tier: String,
    /// Perception-limited cruise speed (m/s).
    pub safe_speed: f64,
    /// All-up mass (g).
    pub mass_g: f64,
    /// Whether the mission completed.
    pub completed: bool,
    /// Mission time (s).
    pub time_s: f64,
    /// Energy per meter covered (J/m).
    pub energy_per_meter: f64,
}

/// The E5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrakesResult {
    /// Course length flown (m).
    pub distance_m: f64,
    /// One row per tier, weakest to strongest.
    pub rows: Vec<TierRow>,
    /// The tier with the lowest energy per meter.
    pub best_tier: String,
}

impl BrakesResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E5 — pump the brakes: UAV compute sweep (§2.4)");
        let mut t = Table::new(
            format!("{} m survey mission by compute tier", self.distance_m),
            vec![
                "tier",
                "safe speed [m/s]",
                "all-up mass [g]",
                "completed",
                "time [s]",
                "energy [J/m]",
            ],
        );
        for row in &self.rows {
            t.push_row(vec![
                row.tier.clone(),
                fmt_f64(row.safe_speed),
                fmt_f64(row.mass_g),
                row.completed.to_string(),
                fmt_f64(row.time_s),
                fmt_f64(row.energy_per_meter),
            ]);
        }
        report.push_table(t);
        report.push_note(format!(
            "energy per meter is U-shaped in compute tier; best tier: {} — both \
             under- and over-provisioning lose (the cited UAV co-design shape)",
            self.best_tier
        ));
        report
    }
}

/// Runs E5 over a 4 km survey.
#[must_use]
pub fn run(seed: u64) -> BrakesResult {
    let distance_m = 4000.0;
    let mission = MissionSpec::survey(distance_m);
    let rows: Vec<TierRow> = ComputeTier::ALL
        .iter()
        .map(|&tier| {
            let uav = Uav::new(UavConfig::default().with_tier(tier));
            let out = uav.fly(&mission, seed);
            TierRow {
                tier: tier.to_string(),
                safe_speed: uav.safe_speed().value(),
                mass_g: uav.all_up_mass(&mission).value(),
                completed: out.completed,
                time_s: out.time.value(),
                energy_per_meter: out.energy_per_meter(),
            }
        })
        .collect();
    let best_tier = rows
        .iter()
        .filter(|r| r.completed)
        .min_by(|a, b| {
            a.energy_per_meter.partial_cmp(&b.energy_per_meter).expect("finite energies")
        })
        .expect("some tier completes")
        .tier
        .clone();
    BrakesResult { distance_m, rows, best_tier }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u_shape_holds() {
        let r = run(5);
        let epm: Vec<f64> = r.rows.iter().map(|row| row.energy_per_meter).collect();
        // The middle tiers beat both extremes.
        let best_mid = epm[1].min(epm[2]);
        assert!(best_mid < epm[0], "middle {best_mid} must beat micro {}", epm[0]);
        assert!(best_mid < epm[4], "middle {best_mid} must beat server {}", epm[4]);
    }

    #[test]
    fn best_tier_is_a_middle_tier() {
        let r = run(5);
        assert!(r.best_tier == "embedded" || r.best_tier == "embedded-gpu", "got {}", r.best_tier);
    }

    #[test]
    fn overprovisioned_tier_fails_the_long_mission() {
        let r = run(5);
        let server = r.rows.iter().find(|row| row.tier == "server").unwrap();
        assert!(!server.completed, "server tier should drain the battery");
    }

    #[test]
    fn speeds_and_masses_are_monotone() {
        let r = run(5);
        for w in r.rows.windows(2) {
            assert!(w[0].safe_speed <= w[1].safe_speed + 1e-9);
            assert!(w[0].mass_g < w[1].mass_g);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn report_mentions_best_tier() {
        let r = run(5);
        assert!(r.report().to_string().contains(&r.best_tier));
    }
}
