//! E4 — Challenge 3, "Widgetism": the over-specialization trap.
//!
//! A task suite of six autonomy workloads is run on three designs: a
//! widget ASIC hardwired to task 1's exact kernel, a cross-cutting
//! accelerator for the two primitive families shared across the suite,
//! and the SIMD CPU software baseline. The widget posts the single best
//! number on its own task and the worst suite average.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind, Specialization};
use m7_arch::workload::{KernelFamily, KernelProfile};
use serde::{Deserialize, Serialize};

/// The six-task autonomy suite (name, kernel pipeline).
#[must_use]
pub fn task_suite() -> Vec<(String, Vec<KernelProfile>)> {
    vec![
        (
            "uav-obstacle-avoidance".to_string(),
            vec![KernelProfile::collision_batch(30_000, 64), KernelProfile::ekf_update(23)],
        ),
        (
            "manipulator-control".to_string(),
            vec![KernelProfile::rnea(7), KernelProfile::gemv(128, 128)],
        ),
        ("warehouse-prm".to_string(), vec![KernelProfile::collision_batch(120_000, 256)]),
        (
            "visual-odometry".to_string(),
            vec![KernelProfile::feature_extract(640, 480), KernelProfile::gemv(256, 256)],
        ),
        ("perception-dnn".to_string(), vec![KernelProfile::dnn_inference(2.0e6, 2.0e6)]),
        ("legacy-scan-matching".to_string(), vec![KernelProfile::correlation_scan(9261, 90)]),
    ]
}

/// The widget under test: hardwired to the warehouse PRM's exact batch
/// shape.
#[must_use]
pub fn prm_widget() -> Platform {
    Platform::builder(PlatformKind::Asic)
        .name("widget-prm-asic")
        .specialization(Specialization::Widget {
            name_prefix: "collision-120000x256".to_string(),
            family: KernelFamily::CollisionGeometry,
            family_fraction: 0.25,
            fallback: 0.02,
        })
        .build()
}

/// The cross-cutting design: accelerates the two families that dominate
/// the suite (batched geometry + dense linear algebra).
#[must_use]
pub fn crosscutting_accelerator() -> Platform {
    Platform::builder(PlatformKind::Asic)
        .name("crosscutting-asic")
        .specialization(Specialization::Families {
            families: vec![KernelFamily::CollisionGeometry, KernelFamily::DenseLinearAlgebra],
            fallback: 0.02,
        })
        .build()
}

/// The E4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WidgetismResult {
    /// Design names, column order of `speedups`.
    pub designs: Vec<String>,
    /// `(task, per-design speedups over the scalar-CPU software baseline)`.
    pub speedups: Vec<(String, Vec<f64>)>,
    /// Geometric-mean suite speedup per design.
    pub suite_geomean: Vec<f64>,
}

impl WidgetismResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E4 — widgetism: over-specialization (§2.3)");
        let mut headers = vec!["task".to_string()];
        headers.extend(self.designs.iter().cloned());
        let mut t = Table::new("speedup over scalar-CPU software", headers);
        for (task, row) in &self.speedups {
            let mut cells = vec![task.clone()];
            cells.extend(row.iter().map(|&s| fmt_f64(s)));
            t.push_row(cells);
        }
        let mut cells = vec!["SUITE GEOMEAN".to_string()];
        cells.extend(self.suite_geomean.iter().map(|&s| fmt_f64(s)));
        t.push_row(cells);
        report.push_table(t);
        report.push_note(
            "the widget posts the single largest per-task number and the smallest suite \
             geomean — evaluation breadth is what exposes widgetism",
        );
        report
    }
}

/// Runs E4. Each design offloads kernels it beats the host on; the rest
/// stay on the integrated SIMD host.
#[must_use]
pub fn run() -> WidgetismResult {
    let baseline = Platform::preset(PlatformKind::CpuScalar);
    let host = Platform::preset(PlatformKind::CpuSimd);
    let designs = [host.clone(), prm_widget(), crosscutting_accelerator()];
    let suite = task_suite();

    let mut speedups = Vec::new();
    for (task, pipeline) in &suite {
        let base = baseline.estimate_pipeline(pipeline).latency;
        let row: Vec<f64> = designs
            .iter()
            .map(|design| {
                let t: m7_units::Seconds = pipeline
                    .iter()
                    .map(|k| design.estimate(k).latency.min(host.estimate(k).latency))
                    .sum();
                base / t
            })
            .collect();
        speedups.push((task.clone(), row));
    }
    let suite_geomean = (0..designs.len())
        .map(|d| {
            let product: f64 = speedups.iter().map(|(_, row)| row[d].ln()).sum();
            (product / speedups.len() as f64).exp()
        })
        .collect();
    WidgetismResult {
        designs: designs.iter().map(|d| d.name().to_string()).collect(),
        speedups,
        suite_geomean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design_index(r: &WidgetismResult, name: &str) -> usize {
        r.designs.iter().position(|d| d == name).expect("design present")
    }

    #[test]
    fn widget_wins_its_own_task() {
        let r = run();
        let widget = design_index(&r, "widget-prm-asic");
        let prm_row = &r.speedups.iter().find(|(t, _)| t == "warehouse-prm").unwrap().1;
        let best = prm_row.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(prm_row[widget], best, "widget must top its own task");
        assert!(prm_row[widget] > 10.0, "and by a wide margin: {}", prm_row[widget]);
    }

    #[test]
    fn widget_loses_the_suite() {
        let r = run();
        let widget = design_index(&r, "widget-prm-asic");
        let cross = design_index(&r, "crosscutting-asic");
        assert!(
            r.suite_geomean[cross] > r.suite_geomean[widget],
            "cross-cutting {} must beat widget {} on the suite",
            r.suite_geomean[cross],
            r.suite_geomean[widget]
        );
    }

    #[test]
    fn crosscutting_helps_multiple_tasks() {
        let r = run();
        let cross = design_index(&r, "crosscutting-asic");
        let host = design_index(&r, "cpu-simd");
        let improved = r.speedups.iter().filter(|(_, row)| row[cross] > row[host] * 1.2).count();
        assert!(improved >= 3, "cross-cutting design should lift at least 3 of 6 tasks");
    }

    #[test]
    fn all_speedups_positive() {
        let r = run();
        for (task, row) in &r.speedups {
            for &s in row {
                assert!(s > 0.0, "task {task} has non-positive speedup");
            }
        }
    }

    #[test]
    fn report_has_geomean_row() {
        let text = run().report().to_string();
        assert!(text.contains("SUITE GEOMEAN"));
    }
}
