//! E6 — Challenge 5, "Chips and Salsa": software (and programmable
//! hardware) can transform motion planning before any ASIC is taped out.
//!
//! Two parts:
//!
//! 1. **Measured.** The PRM roadmap-construction phase is run twice on the
//!    same world and seed — once through the conventional one-edge-at-a-time
//!    trait-object checker, once through the batched structure-of-arrays
//!    checker — and the wall-clock ratio is reported. This is the same
//!    algorithmic transformation (layout + batching) behind the paper's
//!    cited up-to-500× software speedups.
//! 2. **Modeled.** The same collision workload is projected across the
//!    platform presets (scalar CPU → ASIC) with the `m7-arch` cost models.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_kernels::geometry::Vec2;
use m7_kernels::planning::{CollisionWorld, Prm, PrmConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The E6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformsResult {
    /// Measured scalar PRM build time (ms).
    pub scalar_ms: f64,
    /// Measured batched PRM build time (ms).
    pub batched_ms: f64,
    /// Measured software speedup (scalar / batched).
    pub measured_speedup: f64,
    /// Candidate edges validated per build.
    pub edge_checks: usize,
    /// Modeled `(platform, speedup-over-scalar)` for the batch workload.
    pub modeled: Vec<(String, f64)>,
}

impl PlatformsResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E6 — chips and salsa: acceleration beyond ASICs (§2.5)");
        let mut t = Table::new(
            "measured: PRM roadmap construction (same world, same seed)",
            vec!["checker", "build time [ms]", "speedup"],
        );
        t.push_row(vec!["scalar trait-object".to_string(), fmt_f64(self.scalar_ms), "1.00".to_string()]);
        t.push_row(vec![
            "batched SoA".to_string(),
            fmt_f64(self.batched_ms),
            fmt_f64(self.measured_speedup),
        ]);
        report.push_table(t);

        let mut m = Table::new(
            "modeled: batched collision workload across platforms",
            vec!["platform", "speedup over cpu-scalar"],
        );
        for (name, speedup) in &self.modeled {
            m.push_row(vec![name.clone(), fmt_f64(*speedup)]);
        }
        report.push_table(m);
        report.push_note(format!(
            "a pure software transformation already buys {:.1}x on this host; the modeled \
             ladder shows SIMD/GPU/FPGA each capture most of the remaining headroom \
             before an ASIC is justified",
            self.measured_speedup
        ));
        report
    }
}

/// Runs E6: a cluttered 60×60 m warehouse with a dense roadmap.
#[must_use]
pub fn run(seed: u64) -> PlatformsResult {
    let mut world = CollisionWorld::new(60.0, 60.0);
    world.scatter_circles(160, 0.4, 1.6, seed);
    world.add_rect(Vec2::new(20.0, 0.0), Vec2::new(22.0, 40.0));
    world.add_rect(Vec2::new(40.0, 20.0), Vec2::new(42.0, 60.0));
    let config = PrmConfig { samples: 1500, connection_radius: 3.0, max_neighbors: 14 };

    // Warm-up both paths once (allocator, caches), then measure.
    let _ = Prm::build(&world, PrmConfig { samples: 100, ..config }, seed);
    let _ = Prm::build_batched(&world, PrmConfig { samples: 100, ..config }, seed);

    let t0 = Instant::now();
    let scalar = Prm::build(&world, config, seed);
    let scalar_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let batched = Prm::build_batched(&world, config, seed);
    let batched_ms = t1.elapsed().as_secs_f64() * 1e3;

    let workload = KernelProfile::collision_batch(scalar.edge_checks(), world.len());
    let scalar_platform = Platform::preset(PlatformKind::CpuScalar);
    let base = scalar_platform.estimate(&workload).latency;
    let modeled = [
        PlatformKind::CpuScalar,
        PlatformKind::CpuSimd,
        PlatformKind::Gpu,
        PlatformKind::Fpga,
        PlatformKind::Asic,
    ]
    .iter()
    .map(|&kind| {
        let p = Platform::preset(kind);
        (p.name().to_string(), base / p.estimate(&workload).latency)
    })
    .collect();

    PlatformsResult {
        scalar_ms,
        batched_ms,
        measured_speedup: scalar_ms / batched_ms,
        edge_checks: scalar.edge_checks().max(batched.edge_checks()),
        modeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_build_is_faster() {
        let r = run(4);
        assert!(
            r.measured_speedup > 1.2,
            "batched SoA should beat trait-object dispatch: {:.2}x",
            r.measured_speedup
        );
    }

    #[test]
    fn modeled_ladder_is_ordered() {
        let r = run(4);
        let speedup = |name: &str| {
            r.modeled
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, s)| s)
                .expect("platform in table")
        };
        assert!((speedup("cpu-scalar") - 1.0).abs() < 1e-9);
        assert!(speedup("cpu-simd") > 3.0);
        assert!(speedup("gpu-embedded") > speedup("cpu-simd"));
        assert!(speedup("asic") >= speedup("gpu-embedded"));
    }

    #[test]
    fn edge_checks_are_substantial() {
        let r = run(4);
        assert!(r.edge_checks > 5_000, "workload should be non-trivial: {}", r.edge_checks);
    }

    #[test]
    fn report_contains_both_tables() {
        let text = run(4).report().to_string();
        assert!(text.contains("measured"));
        assert!(text.contains("modeled"));
    }
}
