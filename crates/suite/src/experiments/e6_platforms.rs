//! E6 — Challenge 5, "Chips and Salsa": software (and programmable
//! hardware) can transform motion planning before any ASIC is taped out.
//!
//! Two parts:
//!
//! 1. **Measured.** The PRM roadmap-construction phase is run twice on the
//!    same world and seed — once through the conventional one-edge-at-a-time
//!    trait-object checker, once through the batched structure-of-arrays
//!    checker — and the wall-clock ratio is reported. This is the same
//!    algorithmic transformation (layout + batching) behind the paper's
//!    cited up-to-500× software speedups.
//! 2. **Modeled.** The same collision workload is projected across the
//!    platform presets (scalar CPU → ASIC) with the `m7-arch` cost models.
//!
//! The build-time comparison supports two [`Timing`] modes. `Measured`
//! (the library default) reads the host wall clock, so its numbers vary
//! run to run. `Modeled` derives both build times from the `m7-arch` cost
//! models instead — fully deterministic in the seed, which is what the
//! parallel experiment runner and the determinism tests need to produce
//! byte-identical reports.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::{KernelFamily, KernelProfile};
use m7_kernels::geometry::Vec2;
use m7_kernels::planning::{CollisionWorld, Prm, PrmConfig};
use m7_par::ParConfig;
use m7_units::{Bytes, Ops};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// How the E6 build-time comparison obtains its numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Timing {
    /// Wall-clock `Instant` measurements on the host (nondeterministic).
    Measured,
    /// Deterministic projections from the `m7-arch` cost models.
    Modeled,
}

/// The E6 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformsResult {
    /// Where the build times came from.
    pub timing: Timing,
    /// Scalar PRM build time (ms).
    pub scalar_ms: f64,
    /// Batched PRM build time (ms).
    pub batched_ms: f64,
    /// Software speedup (scalar / batched).
    pub measured_speedup: f64,
    /// Candidate edges validated per build.
    pub edge_checks: usize,
    /// Modeled `(platform, speedup-over-scalar)` for the batch workload.
    pub modeled: Vec<(String, f64)>,
}

impl PlatformsResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E6 — chips and salsa: acceleration beyond ASICs (§2.5)");
        let label = match self.timing {
            Timing::Measured => "measured",
            Timing::Modeled => "cost-modeled",
        };
        let mut t = Table::new(
            format!("{label}: PRM roadmap construction (same world, same seed)"),
            vec!["checker", "build time [ms]", "speedup"],
        );
        t.push_row(vec![
            "scalar trait-object".to_string(),
            fmt_f64(self.scalar_ms),
            "1.00".to_string(),
        ]);
        t.push_row(vec![
            "batched SoA".to_string(),
            fmt_f64(self.batched_ms),
            fmt_f64(self.measured_speedup),
        ]);
        report.push_table(t);

        let mut m = Table::new(
            "modeled: batched collision workload across platforms",
            vec!["platform", "speedup over cpu-scalar"],
        );
        for (name, speedup) in &self.modeled {
            m.push_row(vec![name.clone(), fmt_f64(*speedup)]);
        }
        report.push_table(m);
        let basis = match self.timing {
            Timing::Measured => "on this host",
            Timing::Modeled => "under the cost model",
        };
        report.push_note(format!(
            "a pure software transformation already buys {:.1}x {basis}; the modeled \
             ladder shows SIMD/GPU/FPGA each capture most of the remaining headroom \
             before an ASIC is justified",
            self.measured_speedup
        ));
        report
    }
}

/// Runs E6 with wall-clock timing (the library default).
#[must_use]
pub fn run(seed: u64) -> PlatformsResult {
    run_with(seed, Timing::Measured, ParConfig::default())
}

/// Runs E6: a cluttered 60×60 m warehouse with a dense roadmap.
///
/// `par` feeds the batched checker's multi-threaded entry points
/// ([`Prm::build_batched_par`]); the roadmap itself is bit-identical at
/// any thread count. With [`Timing::Modeled`] the whole result is a pure
/// function of `seed`.
#[must_use]
pub fn run_with(seed: u64, timing: Timing, par: ParConfig) -> PlatformsResult {
    let mut world = CollisionWorld::new(60.0, 60.0);
    world.scatter_circles(160, 0.4, 1.6, seed);
    world.add_rect(Vec2::new(20.0, 0.0), Vec2::new(22.0, 40.0));
    world.add_rect(Vec2::new(40.0, 20.0), Vec2::new(42.0, 60.0));
    let config = PrmConfig { samples: 1500, connection_radius: 3.0, max_neighbors: 14 };

    let (scalar_ms, batched_ms, edge_checks) = match timing {
        Timing::Measured => {
            // Warm-up both paths once (allocator, caches), then measure.
            let _ = Prm::build(&world, PrmConfig { samples: 100, ..config }, seed);
            let _ = Prm::build_batched_par(&world, PrmConfig { samples: 100, ..config }, seed, par);

            let t0 = Instant::now();
            let scalar = Prm::build(&world, config, seed);
            let scalar_ms = t0.elapsed().as_secs_f64() * 1e3;

            let t1 = Instant::now();
            let batched = Prm::build_batched_par(&world, config, seed, par);
            let batched_ms = t1.elapsed().as_secs_f64() * 1e3;
            (scalar_ms, batched_ms, scalar.edge_checks().max(batched.edge_checks()))
        }
        Timing::Modeled => {
            // One real build supplies the workload size; both build times
            // come from the cost models, so the numbers are deterministic.
            let batched = Prm::build_batched_par(&world, config, seed, par);
            let edge_checks = batched.edge_checks();
            let cpu = Platform::preset(PlatformKind::CpuScalar);
            let batch_profile = KernelProfile::collision_batch(edge_checks, world.len());
            // The conventional path point-checks interpolated states every
            // 5 cm along each candidate edge (mean length ~2/3 of the
            // connection radius), scanning the whole obstacle list through
            // virtual dispatch each time: ~8 flops per pair plus a
            // pointer-chase of the boxed obstacle per test.
            let steps = (config.connection_radius * (2.0 / 3.0) / 0.05).ceil();
            let pairs = edge_checks as f64 * steps * world.len() as f64;
            let scalar_profile = KernelProfile::new(
                format!("collision-scalar-{edge_checks}x{}", world.len()),
                KernelFamily::CollisionGeometry,
                Ops::new(8.0 * pairs),
                Bytes::new(48.0 * pairs),
                0.95,
            );
            (
                cpu.estimate(&scalar_profile).latency.value() * 1e3,
                cpu.estimate(&batch_profile).latency.value() * 1e3,
                edge_checks,
            )
        }
    };

    let workload = KernelProfile::collision_batch(edge_checks, world.len());
    let scalar_platform = Platform::preset(PlatformKind::CpuScalar);
    let base = scalar_platform.estimate(&workload).latency;
    let modeled = [
        PlatformKind::CpuScalar,
        PlatformKind::CpuSimd,
        PlatformKind::Gpu,
        PlatformKind::Fpga,
        PlatformKind::Asic,
    ]
    .iter()
    .map(|&kind| {
        let p = Platform::preset(kind);
        (p.name().to_string(), base / p.estimate(&workload).latency)
    })
    .collect();

    PlatformsResult {
        timing,
        scalar_ms,
        batched_ms,
        measured_speedup: scalar_ms / batched_ms,
        edge_checks,
        modeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_build_is_faster() {
        let r = run(4);
        assert!(
            r.measured_speedup > 1.2,
            "batched SoA should beat trait-object dispatch: {:.2}x",
            r.measured_speedup
        );
    }

    #[test]
    fn modeled_ladder_is_ordered() {
        let r = run(4);
        let speedup = |name: &str| {
            r.modeled.iter().find(|(n, _)| n == name).map(|&(_, s)| s).expect("platform in table")
        };
        assert!((speedup("cpu-scalar") - 1.0).abs() < 1e-9);
        assert!(speedup("cpu-simd") > 3.0);
        assert!(speedup("gpu-embedded") > speedup("cpu-simd"));
        assert!(speedup("asic") >= speedup("gpu-embedded"));
    }

    #[test]
    fn edge_checks_are_substantial() {
        let r = run(4);
        assert!(r.edge_checks > 5_000, "workload should be non-trivial: {}", r.edge_checks);
    }

    #[test]
    fn report_contains_both_tables() {
        let text = run(4).report().to_string();
        assert!(text.contains("measured"));
        assert!(text.contains("modeled"));
    }

    #[test]
    fn modeled_timing_is_deterministic_across_thread_counts() {
        let runs: Vec<PlatformsResult> = [1usize, 2, 8]
            .iter()
            .map(|&t| run_with(4, Timing::Modeled, ParConfig::with_threads(t)))
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert_eq!(runs[0].report().to_string(), runs[2].report().to_string());
        assert!(
            runs[0].measured_speedup > 5.0,
            "the modeled batching win should be large: {:.1}x",
            runs[0].measured_speedup
        );
    }
}
