//! E9 — §3.1, "Machine Learning for System Design": sample-efficient
//! design-space exploration over the *full system*.
//!
//! The objective is the mission-level metric from `m7-sim` (energy per
//! meter of a UAV survey, with failed missions penalized), over a design
//! space of compute tier × battery × rotor size × sensor range. Random,
//! annealing, genetic, and surrogate-guided searches compete at a fixed
//! evaluation budget; exhaustive enumeration provides the true optimum.

use crate::report::{fmt_f64, Report, Table};
use m7_dse::explorer::{Explorer, SearchBudget};
use m7_dse::memo::EvalMemo;
use m7_dse::space::{DesignSpace, Dimension};
use m7_par::ParConfig;
use m7_serve::cache::EvalCache;
use m7_serve::key::namespace;
use m7_sim::mission::MissionSpec;
use m7_sim::uav::{ComputeTier, Uav, UavConfig};
use m7_units::{Joules, Meters, MetersPerSecond};
use serde::{Deserialize, Serialize};

/// The UAV system design space (tier, battery Wh, rotor disk m², sensor
/// range m).
#[must_use]
pub fn uav_design_space() -> DesignSpace {
    DesignSpace::new(vec![
        Dimension::new("tier", vec![0.0, 1.0, 2.0, 3.0, 4.0]),
        Dimension::new("battery_wh", vec![10.0, 20.0, 40.0, 80.0]),
        Dimension::new("rotor_m2", vec![0.15, 0.25, 0.4]),
        Dimension::new("sensor_m", vec![8.0, 12.0, 20.0]),
    ])
}

/// The mission-level objective: energy per meter, with incomplete
/// missions penalized by the shortfall.
#[must_use]
pub fn mission_cost(values: &[f64], seed: u64) -> f64 {
    let tier = ComputeTier::ALL[values[0] as usize];
    let config = UavConfig {
        frame_mass: m7_units::Grams::new(1200.0),
        battery: Joules::from_watt_hours(values[1]),
        rotor_disk_area: values[2],
        sensor_range: Meters::new(values[3]),
        max_speed: MetersPerSecond::new(16.0),
        tier,
    };
    // Heavier batteries weigh the airframe down too: 150 g per 20 Wh.
    let config = UavConfig {
        frame_mass: config.frame_mass + m7_units::Grams::new(values[1] * 7.5),
        ..config
    };
    let mission = MissionSpec::survey(4000.0);
    let out = Uav::new(config).fly(&mission, seed);
    if out.completed {
        out.energy_per_meter()
    } else {
        // Penalize by how far short the vehicle fell.
        let shortfall = 1.0 - out.distance.value() / mission.distance().value();
        out.energy_per_meter() + 100.0 * shortfall + 20.0
    }
}

/// The E9 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// True optimum cost (exhaustive enumeration).
    pub optimum: f64,
    /// Values of the optimal design.
    pub optimum_values: Vec<f64>,
    /// `(strategy, best cost at budget, evaluations to reach within 10% of
    /// optimum — `None` if never)`.
    pub rows: Vec<(String, f64, Option<usize>)>,
}

impl DseResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E9 — ML for system design: DSE sample efficiency (§3.1)");
        let mut t = Table::new(
            "search strategies at a 40-evaluation budget",
            vec!["strategy", "best cost [J/m]", "evals to within 10% of optimum"],
        );
        for (name, cost, evals) in &self.rows {
            t.push_row(vec![
                name.clone(),
                fmt_f64(*cost),
                evals.map_or_else(|| "never".to_string(), |e| e.to_string()),
            ]);
        }
        report.push_table(t);
        report.push_note(format!(
            "true optimum {} J/m at design {:?} (found by exhaustive enumeration of all \
             {} points)",
            fmt_f64(self.optimum),
            self.optimum_values,
            uav_design_space().cardinality()
        ));
        report
    }
}

/// Runs E9, averaging placement over a few seeds internally for the
/// within-10% statistic.
#[must_use]
pub fn run(seed: u64) -> DseResult {
    let space = uav_design_space();
    let objective = move |values: &[f64]| mission_cost(values, seed);
    let budget = SearchBudget::new(40);

    let exhaustive =
        Explorer::Exhaustive.run(&space, &objective, SearchBudget::new(space.cardinality()), seed);
    let optimum = exhaustive.best_cost;
    let threshold = optimum * 1.10;

    let strategies =
        [Explorer::Random, Explorer::annealing(), Explorer::genetic(), Explorer::surrogate()];
    let rows = strategies
        .iter()
        .map(|strategy| {
            let result = strategy.run(&space, &objective, budget, seed);
            let within = result.trace.iter().position(|&c| c <= threshold).map(|i| i + 1);
            (strategy.name().to_string(), result.best_cost, within)
        })
        .collect();
    DseResult { optimum, optimum_values: exhaustive.best_values, rows }
}

/// [`run`] with objective evaluations memoized through one shared
/// content-addressed cache, so the four budgeted strategies reuse the
/// exhaustive pass's scores (and each other's).
///
/// Returns the result — **bit-identical** to [`run`] for the same seed,
/// because the mission objective is a pure function of its design values
/// and the seed — plus the number of objective evaluations the cache
/// saved. The savings figure is reported out-of-band so the E9 report
/// itself stays byte-stable whether or not memoization is on.
#[must_use]
pub fn run_cached(seed: u64) -> (DseResult, u64) {
    // Big enough to hold the whole space: savings are then exact, not
    // eviction-dependent.
    let cache = EvalCache::new(uav_design_space().cardinality().max(64));
    run_cached_with(seed, &cache)
}

/// [`run_cached`] over a caller-supplied store — the tiered-cache entry
/// point. With a [`m7_serve::tier::TieredCache`] the exhaustive pass's
/// scores persist on disk, so a re-run (even in a new process) answers
/// every evaluation from the store and the savings figure grows
/// accordingly; the [`DseResult`] itself stays bit-identical regardless.
#[must_use]
pub fn run_cached_with<S: m7_serve::tier::ResultStore<f64>>(
    seed: u64,
    cache: &S,
) -> (DseResult, u64) {
    let space = uav_design_space();
    let objective = move |values: &[f64]| mission_cost(values, seed);
    let budget = SearchBudget::new(40);
    let par = ParConfig::default();
    let hits_before = cache.hits();
    let memo = EvalMemo::new(cache, namespace("e9-mission", seed));

    let exhaustive = Explorer::Exhaustive.run_memoized(
        &space,
        &objective,
        SearchBudget::new(space.cardinality()),
        seed,
        par,
        &memo,
    );
    let optimum = exhaustive.best_cost;
    let threshold = optimum * 1.10;

    let strategies =
        [Explorer::Random, Explorer::annealing(), Explorer::genetic(), Explorer::surrogate()];
    let rows = strategies
        .iter()
        .map(|strategy| {
            let result = strategy.run_memoized(&space, &objective, budget, seed, par, &memo);
            let within = result.trace.iter().position(|&c| c <= threshold).map(|i| i + 1);
            (strategy.name().to_string(), result.best_cost, within)
        })
        .collect();
    let saved = cache.hits() - hits_before;
    (DseResult { optimum, optimum_values: exhaustive.best_values, rows }, saved)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_picks_a_sane_design() {
        let r = run(2);
        assert!(r.optimum > 0.0 && r.optimum.is_finite());
        // The optimal tier is never the extremes (U-shape, E5).
        let tier = r.optimum_values[0] as usize;
        assert!((1..=3).contains(&tier), "optimal tier index {tier}");
    }

    #[test]
    fn all_strategies_return_finite_costs() {
        let r = run(2);
        assert_eq!(r.rows.len(), 4);
        for (name, cost, _) in &r.rows {
            assert!(cost.is_finite(), "{name}");
            assert!(*cost >= r.optimum - 1e-9, "{name} cannot beat the true optimum");
        }
    }

    #[test]
    fn guided_search_reaches_near_optimum_within_budget() {
        let r = run(2);
        let surrogate = r.rows.iter().find(|(n, _, _)| n == "surrogate").unwrap();
        assert!(
            surrogate.2.is_some(),
            "surrogate search should get within 10% of optimum in 40 evals"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn cached_run_is_bit_identical_and_saves_evaluations() {
        let plain = run(3);
        let (cached, saved) = run_cached(3);
        assert_eq!(plain, cached, "memoization must not change the result");
        assert_eq!(plain.report().to_string(), cached.report().to_string());
        assert!(saved > 0, "the budgeted strategies revisit exhaustively-scored designs");
    }

    #[test]
    fn report_lists_all_strategies() {
        let text = run(2).report().to_string();
        for s in ["random", "annealing", "genetic", "surrogate"] {
            assert!(text.contains(s), "missing {s}");
        }
    }
}
