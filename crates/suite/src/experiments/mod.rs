//! The experiment registry: one module per paper-anchored experiment.
//!
//! | ID | Paper anchor | Claim shape reproduced |
//! |----|--------------|------------------------|
//! | E1 | Fig. 1 | publication mentions grow super-linearly 2014-2023 |
//! | E2 | §2.1 Build Bridges | accelerating a benchmark-stale kernel wastes the design |
//! | E3 | §2.2 Metrics Matter | raw throughput and time-to-accuracy rank precisions differently |
//! | E4 | §2.3 Widgetism | a widget wins its task, loses the suite |
//! | E5 | §2.4 Pump the Brakes | mission energy is U-shaped in compute tier |
//! | E6 | §2.5 Chips and Salsa | batched software collision checking is dramatically faster |
//! | E7 | §2.6 Forest vs. Trees | kernel speedups hit the Amdahl/AI-tax ceiling |
//! | E8 | §2.7 Design Global | fleets rival datacenters; edge training is dirtier; chiplets save carbon |
//! | E9 | §3.1 ML for design | surrogate-guided DSE is more sample-efficient |
//! | E10 | §2.4 + §3.1 | accelerators contend — per-unit throughput degrades |
//! | E11 | §2.6 | graceful degradation dominates fault-blind on mission success |
//! | E12 | §2.1 + §3.1 | procedural scenarios grade tiers; falsification finds the failure frontier |
//! | E13 | §2.5 | vectorized kernels placed on (and checked against) the roofline |
//! | E14 | §2.1 + §3.1 | streaming campaigns: stratified coverage with importance splitting |
//! | E15 | §2.5 + §2.6 | multi-rate fusion graph: placement, DVFS, and backpressure tradeoffs |

pub mod e10_contention;
pub mod e11_robustness;
pub mod e12_scenarios;
pub mod e13_roofline;
pub mod e14_campaign;
pub mod e15_fusion;
pub mod e1_growth;
pub mod e2_bridges;
pub mod e3_metrics;
pub mod e4_widgetism;
pub mod e5_brakes;
pub mod e6_platforms;
pub mod e7_endtoend;
pub mod e8_global;
pub mod e9_dse;

use crate::report::Report;
use m7_par::{derive_seed, ParConfig};
use m7_trace::{MetricClass, TraceCounter};
use serde::{Deserialize, Serialize};

// Suite observability (no-ops until `m7_trace::enable()`): one counter
// for experiments run plus a per-experiment wall span named by slug.
static EXPERIMENTS: TraceCounter =
    TraceCounter::new("suite.experiments", MetricClass::Deterministic);

pub use e6_platforms::Timing;

/// A runnable experiment from the suite.
///
/// # Examples
///
/// ```
/// use m7_suite::experiments::ExperimentId;
///
/// for id in ExperimentId::ALL {
///     assert!(!id.description().is_empty());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// E1 — publication-growth curve (paper Fig. 1).
    E1Growth,
    /// E2 — wrong-kernel acceleration (Challenge 1).
    E2Bridges,
    /// E3 — throughput vs. time-to-accuracy (Challenge 2).
    E3Metrics,
    /// E4 — widget vs. cross-cutting accelerator (Challenge 3).
    E4Widgetism,
    /// E5 — UAV compute-tier sweep (Challenge 4).
    E5Brakes,
    /// E6 — platform comparison for motion planning (Challenge 5).
    E6Platforms,
    /// E7 — end-to-end Amdahl / AI-tax curve (Challenge 6).
    E7EndToEnd,
    /// E8 — fleet, training, and chiplet carbon (Challenge 7).
    E8Global,
    /// E9 — DSE sample efficiency (§3.1).
    E9Dse,
    /// E10 — shared-resource contention (Challenge 4 ablation).
    E10Contention,
    /// E11 — robustness under injected faults (Challenge 6).
    E11Robustness,
    /// E12 — procedural scenario supply and falsification (§2.1 + §3.1).
    E12Scenarios,
    /// E13 — measured vs modeled roofline for vectorized kernels (§2.5).
    E13Roofline,
    /// E14 — streaming mega-campaigns over scenario space (§2.1 + §3.1).
    E14Campaign,
    /// E15 — multi-rate sensor-fusion dataflow graph (§2.5 + §2.6).
    E15Fusion,
}

impl ExperimentId {
    /// All experiments, in paper order. E13–E15 are appended at the
    /// end so the position-derived per-experiment seeds of earlier
    /// experiments are unchanged.
    pub const ALL: [Self; 15] = [
        Self::E1Growth,
        Self::E2Bridges,
        Self::E3Metrics,
        Self::E4Widgetism,
        Self::E5Brakes,
        Self::E6Platforms,
        Self::E7EndToEnd,
        Self::E8Global,
        Self::E9Dse,
        Self::E10Contention,
        Self::E11Robustness,
        Self::E12Scenarios,
        Self::E13Roofline,
        Self::E14Campaign,
        Self::E15Fusion,
    ];

    /// Short identifier used in file names and bench targets.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            Self::E1Growth => "e1_growth",
            Self::E2Bridges => "e2_bridges",
            Self::E3Metrics => "e3_metrics",
            Self::E4Widgetism => "e4_widgetism",
            Self::E5Brakes => "e5_brakes",
            Self::E6Platforms => "e6_platforms",
            Self::E7EndToEnd => "e7_endtoend",
            Self::E8Global => "e8_global",
            Self::E9Dse => "e9_dse",
            Self::E10Contention => "e10_contention",
            Self::E11Robustness => "e11_robustness",
            Self::E12Scenarios => "e12_scenarios",
            Self::E13Roofline => "e13_roofline",
            Self::E14Campaign => "e14_campaign",
            Self::E15Fusion => "e15_fusion",
        }
    }

    /// One-line description with the paper anchor.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Self::E1Growth => "Fig. 1: growth of autonomy-accelerator publications",
            Self::E2Bridges => "§2.1: accelerating an obsolete SLAM kernel wastes the design",
            Self::E3Metrics => "§2.2: throughput and time-to-accuracy rank precisions differently",
            Self::E4Widgetism => "§2.3: a widget ASIC wins its task but loses the task suite",
            Self::E5Brakes => "§2.4: UAV mission energy is U-shaped in onboard compute",
            Self::E6Platforms => "§2.5: batched/vectorized software transforms motion planning",
            Self::E7EndToEnd => "§2.6: kernel speedups hit the end-to-end Amdahl/AI-tax ceiling",
            Self::E8Global => "§2.7: fleet carbon, edge-vs-cloud training, chiplet reuse",
            Self::E9Dse => "§3.1: surrogate-guided DSE finds better designs in fewer samples",
            Self::E10Contention => "§2.4: accelerators are not free — shared-bus contention",
            Self::E11Robustness => {
                "§2.6: graceful degradation beats fault-blind designs on mission success"
            }
            Self::E12Scenarios => {
                "§2.1+§3.1: procedural scenarios grade tiers; falsification finds the frontier"
            }
            Self::E13Roofline => {
                "§2.5: vectorized kernels placed on (and checked against) the roofline"
            }
            Self::E14Campaign => {
                "§2.1+§3.1: streaming campaigns pin per-stratum success curves at scale"
            }
            Self::E15Fusion => {
                "§2.5+§2.6: one fusion graph, three placements — contention, DVFS, backpressure"
            }
        }
    }

    /// Runs the experiment with default parameters, deterministic in
    /// `seed` (except E6's wall-clock rows; see [`Timing`]).
    #[must_use]
    pub fn run(self, seed: u64) -> Report {
        self.run_with(seed, Timing::Measured)
    }

    /// Runs the experiment with an explicit E6 [`Timing`] mode. With
    /// [`Timing::Modeled`] every report is a pure function of `seed`.
    #[must_use]
    pub fn run_with(self, seed: u64, timing: Timing) -> Report {
        EXPERIMENTS.incr();
        let _span = m7_trace::span_dyn(self.slug());
        match self {
            Self::E1Growth => e1_growth::run(seed).report(),
            Self::E2Bridges => e2_bridges::run().report(),
            Self::E3Metrics => e3_metrics::run(seed).report(),
            Self::E4Widgetism => e4_widgetism::run().report(),
            Self::E5Brakes => e5_brakes::run(seed).report(),
            Self::E6Platforms => {
                e6_platforms::run_with(seed, timing, m7_par::ParConfig::default()).report()
            }
            Self::E7EndToEnd => e7_endtoend::run().report(),
            Self::E8Global => e8_global::run().report(),
            Self::E9Dse => e9_dse::run(seed).report(),
            Self::E10Contention => e10_contention::run().report(),
            Self::E11Robustness => e11_robustness::run(seed).report(),
            Self::E12Scenarios => e12_scenarios::run(seed).report(),
            Self::E13Roofline => e13_roofline::run_with(seed, timing).report(),
            Self::E14Campaign => e14_campaign::run(seed).report(),
            Self::E15Fusion => e15_fusion::run(seed, m7_par::ParConfig::default()).report(),
        }
    }

    /// [`ExperimentId::run_with`], routing experiments with a memoized
    /// evaluation path (today: E9 and E12) through their content-addressed
    /// caches.
    ///
    /// Returns the report — byte-identical to [`ExperimentId::run_with`]
    /// for the same arguments, because memoization only skips re-scoring
    /// pure objectives — plus the number of objective evaluations the
    /// cache saved (`0` for experiments without a cached path).
    #[must_use]
    pub fn run_with_cached(self, seed: u64, timing: Timing) -> (Report, u64) {
        match self {
            Self::E9Dse => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e9_dse::run_cached(seed);
                (result.report(), saved)
            }
            Self::E12Scenarios => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e12_scenarios::run_cached(seed);
                (result.report(), saved)
            }
            Self::E14Campaign => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e14_campaign::run_cached(seed);
                (result.report(), saved)
            }
            other => (other.run_with(seed, timing), 0),
        }
    }

    /// [`ExperimentId::run_with_cached`] with the memoized experiments
    /// routed through one caller-supplied [`ResultStore`] — the entry
    /// point for the disk-backed
    /// [`TieredCache`](m7_serve::tier::TieredCache), which makes
    /// objective evaluations survive process restarts. Reports stay
    /// byte-identical to the uncached runner for any store contents;
    /// only the savings figure moves.
    #[must_use]
    pub fn run_with_cached_in<S: m7_serve::tier::ResultStore<f64>>(
        self,
        seed: u64,
        timing: Timing,
        store: &S,
    ) -> (Report, u64) {
        match self {
            Self::E9Dse => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e9_dse::run_cached_with(seed, store);
                (result.report(), saved)
            }
            Self::E12Scenarios => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e12_scenarios::run_cached_with(seed, store);
                (result.report(), saved)
            }
            Self::E14Campaign => {
                EXPERIMENTS.incr();
                let _span = m7_trace::span_dyn(self.slug());
                let (result, saved) = e14_campaign::run_cached_with(seed, store);
                (result.report(), saved)
            }
            other => (other.run_with(seed, timing), 0),
        }
    }
}

/// Resolves a slug-prefix filter to experiments in paper order.
///
/// `None` selects every experiment. A filter that matches nothing is an
/// error naming the known slugs, so a typo cannot silently run zero
/// experiments — the same contract on the serial and parallel paths.
///
/// # Errors
///
/// Returns the "known slugs" message when the filter matches no slug.
pub fn select(filter: Option<&str>) -> Result<Vec<ExperimentId>, String> {
    let ids: Vec<ExperimentId> = match filter {
        None => ExperimentId::ALL.to_vec(),
        Some(f) => {
            ExperimentId::ALL.iter().copied().filter(|id| id.slug().starts_with(f)).collect()
        }
    };
    if ids.is_empty() {
        return Err(unknown_selection_error(filter.unwrap_or("")));
    }
    Ok(ids)
}

/// The error for a selection that names no experiment.
fn unknown_selection_error(filter: &str) -> String {
    let slugs: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.slug()).collect();
    format!("no experiment slug starts with {filter:?}; known slugs: {}", slugs.join(", "))
}

/// The derived per-experiment seed: an experiment always runs on the seed
/// of its position in paper order, whether or not the others run.
fn experiment_seed(root_seed: u64, id: ExperimentId) -> u64 {
    let index = ExperimentId::ALL.iter().position(|&e| e == id).expect("id is in ALL") as u64;
    derive_seed(root_seed, index)
}

/// Runs the selected experiments one at a time, in the given order, each
/// on the seed of its paper-order position — the serial reference for
/// [`run_selected_parallel`].
///
/// # Errors
///
/// Returns the "known slugs" style error when `ids` is empty — an empty
/// selection is always a caller bug, never a valid no-op.
pub fn run_selected_serial(
    ids: &[ExperimentId],
    root_seed: u64,
    timing: Timing,
) -> Result<Vec<(ExperimentId, Report)>, String> {
    if ids.is_empty() {
        return Err(unknown_selection_error(""));
    }
    Ok(ids.iter().map(|&id| (id, id.run_with(experiment_seed(root_seed, id), timing))).collect())
}

/// Runs the selected experiments concurrently on the deterministic pool,
/// each on the seed of its paper-order position, returning reports in the
/// given order regardless of which finishes first.
///
/// With [`Timing::Modeled`] the reports are byte-identical to
/// [`run_selected_serial`] with the same arguments at any thread count;
/// with [`Timing::Measured`] only E6's two wall-clock numbers differ.
///
/// # Errors
///
/// Returns the same error as [`run_selected_serial`] when `ids` is empty
/// — the parallel path must not silently accept a selection the serial
/// path rejects.
pub fn run_selected_parallel(
    ids: &[ExperimentId],
    root_seed: u64,
    timing: Timing,
    par: ParConfig,
) -> Result<Vec<(ExperimentId, Report)>, String> {
    if ids.is_empty() {
        return Err(unknown_selection_error(""));
    }
    Ok(par.par_map(ids, |&id| (id, id.run_with(experiment_seed(root_seed, id), timing))))
}

/// [`run_selected_serial`], routing cached experiments (today: E9,
/// E12, and E14)
/// through their memoized path. Each tuple carries the evaluations the
/// cache saved for that experiment; reports are byte-identical to the
/// uncached runner.
///
/// # Errors
///
/// Returns the same empty-selection error as [`run_selected_serial`].
pub fn run_selected_serial_cached(
    ids: &[ExperimentId],
    root_seed: u64,
    timing: Timing,
) -> Result<Vec<(ExperimentId, Report, u64)>, String> {
    if ids.is_empty() {
        return Err(unknown_selection_error(""));
    }
    Ok(ids
        .iter()
        .map(|&id| {
            let (report, saved) = id.run_with_cached(experiment_seed(root_seed, id), timing);
            (id, report, saved)
        })
        .collect())
}

/// [`run_selected_serial_cached`] with every memoized experiment
/// sharing one caller-supplied store. With an in-memory store this is a
/// cross-experiment cache; with a disk-backed
/// [`TieredCache`](m7_serve::tier::TieredCache) it is a cross-*process*
/// cache — a re-run in a fresh process answers previously computed
/// objectives from disk and reports the larger savings, while every
/// report stays byte-identical.
///
/// # Errors
///
/// Returns the same empty-selection error as [`run_selected_serial`].
pub fn run_selected_serial_cached_in<S: m7_serve::tier::ResultStore<f64>>(
    ids: &[ExperimentId],
    root_seed: u64,
    timing: Timing,
    store: &S,
) -> Result<Vec<(ExperimentId, Report, u64)>, String> {
    if ids.is_empty() {
        return Err(unknown_selection_error(""));
    }
    Ok(ids
        .iter()
        .map(|&id| {
            let (report, saved) =
                id.run_with_cached_in(experiment_seed(root_seed, id), timing, store);
            (id, report, saved)
        })
        .collect())
}

/// [`run_selected_parallel`], routing cached experiments (today: E9,
/// E12, and E14)
/// through their memoized path on the deterministic pool. Reports and
/// saved-evaluation counts are identical to
/// [`run_selected_serial_cached`] at any thread count.
///
/// # Errors
///
/// Returns the same empty-selection error as [`run_selected_parallel`].
pub fn run_selected_parallel_cached(
    ids: &[ExperimentId],
    root_seed: u64,
    timing: Timing,
    par: ParConfig,
) -> Result<Vec<(ExperimentId, Report, u64)>, String> {
    if ids.is_empty() {
        return Err(unknown_selection_error(""));
    }
    Ok(par.par_map(ids, |&id| {
        let (report, saved) = id.run_with_cached(experiment_seed(root_seed, id), timing);
        (id, report, saved)
    }))
}

/// Runs all experiments one at a time, in paper order, each on its own
/// seed derived from `root_seed` — the serial reference for
/// [`run_all_parallel`].
#[must_use]
pub fn run_all_serial(root_seed: u64, timing: Timing) -> Vec<(ExperimentId, Report)> {
    run_selected_serial(&ExperimentId::ALL, root_seed, timing).expect("ALL is never empty")
}

/// Runs all experiments concurrently on the deterministic pool, each
/// on its own seed derived from `root_seed`, returning reports in paper
/// order regardless of which experiment finishes first.
///
/// With [`Timing::Modeled`] the reports are byte-identical to
/// [`run_all_serial`] with the same arguments at any thread count; with
/// [`Timing::Measured`] only E6's two wall-clock numbers differ.
#[must_use]
pub fn run_all_parallel(
    root_seed: u64,
    timing: Timing,
    par: ParConfig,
) -> Vec<(ExperimentId, Report)> {
    run_selected_parallel(&ExperimentId::ALL, root_seed, timing, par).expect("ALL is never empty")
}

impl core::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.slug())
    }
}

/// Convenience alias used by example binaries.
pub use ExperimentId as Experiment;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<&str> = ExperimentId::ALL.iter().map(|e| e.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), ExperimentId::ALL.len());
    }

    #[test]
    fn display_matches_slug() {
        assert_eq!(ExperimentId::E5Brakes.to_string(), "e5_brakes");
    }

    #[test]
    fn parallel_runner_preserves_paper_order() {
        let reports = run_all_parallel(42, Timing::Modeled, ParConfig::default());
        let ids: Vec<ExperimentId> = reports.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, ExperimentId::ALL);
    }

    #[test]
    fn select_resolves_prefixes_and_defaults_to_all() {
        assert_eq!(select(None).unwrap(), ExperimentId::ALL.to_vec());
        assert_eq!(select(Some("e5")).unwrap(), vec![ExperimentId::E5Brakes]);
        // "e1" prefixes e1, e10, e11, e12, e13, e14, and e15.
        assert_eq!(
            select(Some("e1")).unwrap(),
            vec![
                ExperimentId::E1Growth,
                ExperimentId::E10Contention,
                ExperimentId::E11Robustness,
                ExperimentId::E12Scenarios,
                ExperimentId::E13Roofline,
                ExperimentId::E14Campaign,
                ExperimentId::E15Fusion,
            ]
        );
    }

    #[test]
    fn unknown_selection_errors_name_the_slugs() {
        let err = select(Some("e99")).unwrap_err();
        assert!(err.contains("no experiment slug starts with \"e99\""), "got {err}");
        assert!(err.contains("e11_robustness"), "error must list known slugs: {err}");
    }

    #[test]
    fn cached_runner_reports_match_uncached_and_only_cached_paths_save() {
        let ids = [ExperimentId::E5Brakes, ExperimentId::E9Dse, ExperimentId::E12Scenarios];
        let plain = run_selected_serial(&ids, 42, Timing::Modeled).unwrap();
        let cached = run_selected_serial_cached(&ids, 42, Timing::Modeled).unwrap();
        for ((id, report), (cid, creport, saved)) in plain.iter().zip(&cached) {
            assert_eq!(id, cid);
            assert_eq!(report.to_string(), creport.to_string(), "{id}: report must not change");
            if matches!(cid, ExperimentId::E9Dse | ExperimentId::E12Scenarios) {
                assert!(*saved > 0, "{cid} must save evaluations");
            } else {
                assert_eq!(*saved, 0, "{id} has no cached path");
            }
        }
        let parallel =
            run_selected_parallel_cached(&ids, 42, Timing::Modeled, ParConfig::with_threads(4))
                .unwrap();
        assert_eq!(cached.len(), parallel.len());
        for ((id, report, saved), (pid, preport, psaved)) in cached.iter().zip(&parallel) {
            assert_eq!(id, pid);
            assert_eq!(report.to_string(), preport.to_string());
            assert_eq!(saved, psaved, "{id}: savings must be thread-count invariant");
        }
    }

    #[test]
    fn empty_selection_errs_identically_on_serial_and_parallel_paths() {
        let serial = run_selected_serial(&[], 42, Timing::Modeled).unwrap_err();
        let parallel =
            run_selected_parallel(&[], 42, Timing::Modeled, ParConfig::default()).unwrap_err();
        assert_eq!(serial, parallel, "both paths must reject an empty selection the same way");
        assert!(serial.contains("known slugs"), "got {serial}");
    }

    #[test]
    fn single_selection_keeps_its_full_run_seed() {
        let full = run_all_serial(42, Timing::Modeled);
        let solo = run_selected_serial(&[ExperimentId::E5Brakes], 42, Timing::Modeled).unwrap();
        let full_e5 = &full.iter().find(|(id, _)| *id == ExperimentId::E5Brakes).unwrap().1;
        assert_eq!(solo[0].1.to_string(), full_e5.to_string());
    }
}
