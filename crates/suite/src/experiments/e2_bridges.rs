//! E2 — Challenge 1, "Build Bridges": what happens when an architect
//! accelerates the kernel a *stale benchmark* says is the bottleneck.
//!
//! The legacy benchmark pipeline is dominated by dense grid-correlation
//! scan matching ([`m7_kernels::slam::DenseScanSlam`]'s inner loop). The
//! *deployed* pipeline — what practitioners actually run today — is a
//! sparse stack: feature extraction, EKF updates, batched collision
//! checks, and dynamics. A "correlation widget" ASIC looks spectacular on
//! the legacy benchmark and does nothing for the deployed stack, while an
//! expert-informed cross-cutting accelerator helps where it matters.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::platform::{Platform, PlatformKind, Specialization};
use m7_arch::workload::{KernelFamily, KernelProfile};
use serde::{Deserialize, Serialize};

/// The legacy (benchmark-era) SLAM pipeline: correlation dominates.
#[must_use]
pub fn legacy_pipeline() -> Vec<KernelProfile> {
    vec![
        // A 21×21×21-hypothesis window over a 90-beam scan, per update.
        KernelProfile::correlation_scan(9261, 90),
        KernelProfile::ekf_update(23),
        KernelProfile::rnea(6),
    ]
}

/// The deployed (modern) pipeline: sparse filters and geometry.
#[must_use]
pub fn deployed_pipeline() -> Vec<KernelProfile> {
    vec![
        KernelProfile::feature_extract(640, 480),
        KernelProfile::ekf_update(43),
        KernelProfile::collision_batch(20_000, 64),
        KernelProfile::rnea(6),
    ]
}

/// The benchmark-driven design: a widget hardwired to the correlation
/// kernel shape.
#[must_use]
pub fn correlation_widget() -> Platform {
    Platform::builder(PlatformKind::Asic)
        .name("correlation-widget")
        // The whole occupancy grid is pinned in on-chip SRAM — which is
        // exactly what makes this a widget: that SRAM helps no other kernel.
        .roofline(m7_arch::roofline::Roofline::new(
            m7_units::OpsPerSecond::from_teraops(4.0),
            m7_units::BytesPerSecond::from_gigabytes_per_second(1000.0),
        ))
        .specialization(Specialization::Widget {
            name_prefix: "correlation-".to_string(),
            family: KernelFamily::GridCorrelation,
            family_fraction: 0.3,
            fallback: 0.02,
        })
        .build()
}

/// The expert-informed design: a cross-cutting accelerator for the
/// families the deployed stack actually exercises.
#[must_use]
pub fn expert_accelerator() -> Platform {
    Platform::builder(PlatformKind::Asic)
        .name("expert-crosscutting")
        .specialization(Specialization::Families {
            families: vec![
                KernelFamily::DenseLinearAlgebra,
                KernelFamily::CollisionGeometry,
                KernelFamily::Stencil,
            ],
            fallback: 0.02,
        })
        .build()
}

/// The E2 result rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BridgesResult {
    /// `(design, legacy-benchmark speedup, deployed-pipeline speedup)`.
    pub rows: Vec<(String, f64, f64)>,
}

impl BridgesResult {
    /// Speedup of `design` on the deployed pipeline.
    #[must_use]
    pub fn deployed_speedup(&self, design: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _, _)| n == design).map(|&(_, _, s)| s)
    }

    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E2 — build bridges: benchmark-stale acceleration (§2.1)");
        let mut t = Table::new(
            "end-to-end speedup over the host CPU",
            vec!["design", "legacy benchmark", "deployed pipeline"],
        );
        for (name, legacy, deployed) in &self.rows {
            t.push_row(vec![name.clone(), fmt_f64(*legacy), fmt_f64(*deployed)]);
        }
        report.push_table(t);
        report.push_note(
            "the correlation widget looks transformative on the stale benchmark and is \
             irrelevant to the deployed stack — ongoing domain-expert feedback would have \
             redirected the design",
        );
        report
    }
}

/// Runs E2.
#[must_use]
pub fn run() -> BridgesResult {
    let host = Platform::preset(PlatformKind::CpuSimd);
    let designs = [correlation_widget(), expert_accelerator()];
    let legacy = legacy_pipeline();
    let deployed = deployed_pipeline();

    let host_legacy = host.estimate_pipeline(&legacy).latency;
    let host_deployed = host.estimate_pipeline(&deployed).latency;

    let rows = designs
        .iter()
        .map(|design| {
            // The accelerator offloads matching kernels; non-matching kernels
            // stay on the host (a realistic SoC integration), so each kernel
            // runs on whichever is faster.
            let offloaded = |pipeline: &[KernelProfile]| {
                pipeline
                    .iter()
                    .map(|k| design.estimate(k).latency.min(host.estimate(k).latency))
                    .sum::<m7_units::Seconds>()
            };
            (
                design.name().to_string(),
                host_legacy / offloaded(&legacy),
                host_deployed / offloaded(&deployed),
            )
        })
        .collect();
    BridgesResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widget_wins_legacy_loses_deployed() {
        let r = run();
        let widget_legacy = r.rows[0].1;
        let widget_deployed = r.rows[0].2;
        assert!(widget_legacy > 2.0, "widget should shine on its benchmark: {widget_legacy}");
        assert!(
            widget_deployed < widget_legacy / 2.0,
            "widget gain should collapse on the deployed stack: {widget_deployed} vs {widget_legacy}"
        );
    }

    #[test]
    fn expert_design_helps_deployed_stack() {
        let r = run();
        let expert = r.deployed_speedup("expert-crosscutting").unwrap();
        let widget = r.deployed_speedup("correlation-widget").unwrap();
        assert!(expert > widget, "expert {expert} must beat widget {widget} where it matters");
        assert!(expert > 1.5, "expert design should deliver a real end-to-end win: {expert}");
    }

    #[test]
    fn speedups_are_at_least_one() {
        // Offloading falls back to the host, so no design loses end-to-end.
        for (name, legacy, deployed) in run().rows {
            assert!(legacy >= 0.99, "{name} legacy {legacy}");
            assert!(deployed >= 0.99, "{name} deployed {deployed}");
        }
    }

    #[test]
    fn report_renders() {
        let text = run().report().to_string();
        assert!(text.contains("correlation-widget"));
        assert!(text.contains("expert-crosscutting"));
    }
}
