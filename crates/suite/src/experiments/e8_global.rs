//! E8 — Challenge 7, "Design Global": carbon at deployment scale.
//!
//! Three sub-experiments reproduce the section's cited results:
//!
//! - **E8a** — "datacenters on wheels": fleet-scale AV compute emissions
//!   vs. a hyperscale-datacenter baseline.
//! - **E8b** — edge-vs-cloud training carbon ratio.
//! - **E8c** — chiplet vs. monolithic embodied carbon, with
//!   cross-generation reuse.

use crate::report::{fmt_f64, Report, Table};
use m7_lca::chiplet::SystemDesign;
use m7_lca::fleet::FleetModel;
use m7_lca::training::TrainingJob;
use m7_units::{Ops, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

/// The E8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalResult {
    /// `(fleet size, annual MtCO₂e, datacenter equivalents)`.
    pub fleet_rows: Vec<(u64, f64, f64)>,
    /// Edge-to-cloud training emission ratio.
    pub edge_cloud_ratio: f64,
    /// `(design, embodied kgCO₂e, next-gen kgCO₂e with reuse)`.
    pub chiplet_rows: Vec<(String, f64, f64)>,
}

impl GlobalResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E8 — design global: carbon at scale (§2.7)");

        let mut fleet = Table::new(
            "E8a: AV fleet onboard-compute emissions (1 kW, 8 h/day)",
            vec!["fleet size", "annual MtCO2e", "100 MW datacenter equivalents"],
        );
        for &(n, mt, dc) in &self.fleet_rows {
            fleet.push_row(vec![n.to_string(), fmt_f64(mt), fmt_f64(dc)]);
        }
        report.push_table(fleet);

        let mut chiplet = Table::new(
            "E8c: embodied carbon, 600 mm² of 7 nm logic",
            vec!["design", "embodied [kgCO2e]", "next generation w/ reuse [kgCO2e]"],
        );
        for (name, embodied, next) in &self.chiplet_rows {
            chiplet.push_row(vec![name.clone(), fmt_f64(*embodied), fmt_f64(*next)]);
        }
        report.push_table(chiplet);

        report.push_note(format!(
            "E8b: the same training job emits {:.0}x more CO2e on edge devices than in the \
             cloud (efficiency gap dominates the PUE overhead) — the paper's cited result",
            self.edge_cloud_ratio
        ));
        report.push_note(
            "E8a reproduces the 'datacenters on wheels' claim: a 100M-vehicle fleet's \
             onboard compute rivals hundreds of hyperscale datacenters",
        );
        report
    }
}

/// Runs E8.
#[must_use]
pub fn run() -> GlobalResult {
    let fleet_rows = [100_000u64, 1_000_000, 10_000_000, 100_000_000]
        .iter()
        .map(|&n| {
            let fleet = FleetModel::new(n, Watts::new(1000.0), 8.0);
            (
                n,
                fleet.annual_emissions().value() / 1e9, // kg → Mt
                fleet.datacenter_equivalents(),
            )
        })
        .collect();

    let edge_cloud_ratio = TrainingJob::new(Ops::new(1e21)).edge_to_cloud_ratio();

    let area = SquareMillimeters::new(600.0);
    let mono = SystemDesign::monolithic(area, 7.0);
    let quad = SystemDesign::chiplets(area, 7.0, 4);
    let chiplet_rows = vec![
        (
            "monolithic-600mm2".to_string(),
            mono.embodied_carbon().value(),
            mono.next_generation_carbon(0).value(),
        ),
        (
            "4x150mm2-chiplets".to_string(),
            quad.embodied_carbon().value(),
            quad.next_generation_carbon(2).value(),
        ),
    ];

    GlobalResult { fleet_rows, edge_cloud_ratio, chiplet_rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_lca::training::TrainingVenue;

    #[test]
    fn fleet_emissions_scale_linearly() {
        let r = run();
        let (n0, mt0, _) = r.fleet_rows[0];
        let (n3, mt3, _) = r.fleet_rows[3];
        let scale = n3 as f64 / n0 as f64;
        assert!((mt3 / mt0 - scale).abs() / scale < 1e-9);
    }

    #[test]
    fn headline_fleet_rivals_datacenters() {
        let r = run();
        let (_, _, dc) = r.fleet_rows[3];
        assert!(dc > 100.0, "100M vehicles ≈ {dc} datacenters");
    }

    #[test]
    fn edge_training_is_dirtier() {
        let r = run();
        assert!(r.edge_cloud_ratio > 10.0);
        assert!(r.edge_cloud_ratio < 1000.0);
    }

    #[test]
    fn chiplets_cut_embodied_and_nextgen_carbon() {
        let r = run();
        let mono = &r.chiplet_rows[0];
        let quad = &r.chiplet_rows[1];
        assert!(quad.1 < mono.1, "chiplets {} must undercut monolithic {}", quad.1, mono.1);
        assert!(quad.2 < quad.1, "reuse must cut next-generation carbon");
        assert!(mono.2 >= mono.1 * 0.99, "monolithic cannot reuse anything");
    }

    #[test]
    fn venue_presets_are_consistent() {
        // Guard: the ratio should track the efficiency gap order.
        let cloud = TrainingVenue::cloud();
        let edge = TrainingVenue::edge();
        let eff_gap = cloud.efficiency / edge.efficiency;
        let r = run();
        assert!(r.edge_cloud_ratio > eff_gap * 0.3);
    }

    #[test]
    fn report_renders_three_parts() {
        let text = run().report().to_string();
        assert!(text.contains("E8a"));
        assert!(text.contains("E8b"));
        assert!(text.contains("E8c"));
    }
}
