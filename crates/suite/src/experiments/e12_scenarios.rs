//! E12 — §2.1 + §3.1: scenario supply and adversarial falsification.
//!
//! Challenge 1 argues that accelerator designs are only as good as the
//! workloads they are judged on; §3.1 argues for search over design
//! spaces. E12 closes the loop from the *scenario* side: procedural
//! generators supply graded worlds to the existing UAV and rover closed
//! loops, and the same DSE machinery is turned around to *falsify* a
//! platform tier — find the easiest scenario that makes it miss its
//! mission deadline. An under-provisioned tier is falsified at low
//! difficulty; an adequately provisioned tier survives the entire
//! probed space, and the gap between those two numbers is the
//! provisioning margin.

use crate::report::{fmt_f64, Report, Table};
use m7_par::{derive_seed, ParConfig};
use m7_scen::{
    evaluate_rover, evaluate_uav, falsify_memo, generate, Falsification, FalsifyConfig, Family,
    ScenOutcome,
};
use m7_serve::cache::EvalCache;
use m7_sim::uav::ComputeTier;
use serde::{Deserialize, Serialize};

/// One UAV sweep cell: (family, level, scenario seed, tier).
type UavCombo = (Family, f64, u64, ComputeTier);

/// The two platform tiers under test: under-provisioned vs. adequate.
pub const TIERS: [ComputeTier; 2] = [ComputeTier::Micro, ComputeTier::Embedded];
/// Difficulty levels swept in the per-generator table.
pub const LEVELS: [f64; 3] = [0.2, 0.5, 0.8];
/// World-seed variants per (family, level) cell.
pub const VARIANTS: u64 = 2;
/// Difficulty level for the rover (RRT-in-the-loop) spot checks.
pub const ROVER_LEVEL: f64 = 0.35;

/// Aggregate UAV outcome of one tier on one generator family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyTierStat {
    /// The tier flown.
    pub tier: ComputeTier,
    /// Missions that met their deadline.
    pub successes: usize,
    /// Missions flown (levels × variants).
    pub runs: usize,
    /// Mean mission time across the runs (seconds).
    pub mean_time_s: f64,
}

/// One row of the per-generator table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyRow {
    /// Generator family.
    pub family: Family,
    /// Mean difficulty score of the swept scenarios.
    pub mean_difficulty: f64,
    /// Per-tier aggregates, in [`TIERS`] order.
    pub tiers: Vec<FamilyTierStat>,
}

/// One rover spot check: a start→goal patrol with RRT in the loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoverRow {
    /// Generator family of the world.
    pub family: Family,
    /// The tier driving.
    pub tier: ComputeTier,
    /// The closed-loop outcome.
    pub outcome: ScenOutcome,
}

/// The E12 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenariosResult {
    /// Per-generator UAV success/latency rows, one per family.
    pub families: Vec<FamilyRow>,
    /// Rover spot checks (corridor and forest, both tiers).
    pub rover: Vec<RoverRow>,
    /// Falsification outcome per tier, in [`TIERS`] order.
    pub falsifications: Vec<Falsification>,
}

impl ScenariosResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report =
            Report::new("E12 — scenario supply: procedural worlds and falsification (§2.1+§3.1)");

        let mut grid = Table::new(
            "UAV deadline success per generator family (3 levels x 2 variants per tier)",
            vec![
                "family",
                "mean difficulty",
                "micro ok",
                "micro time [s]",
                "embedded ok",
                "embedded time [s]",
            ],
        );
        for row in &self.families {
            let mut cells = vec![row.family.to_string(), fmt_f64(row.mean_difficulty)];
            for stat in &row.tiers {
                cells.push(format!("{}/{}", stat.successes, stat.runs));
                cells.push(fmt_f64(stat.mean_time_s));
            }
            grid.push_row(cells);
        }
        report.push_table(grid);

        let mut rover = Table::new(
            "rover spot checks, RRT in the loop (level 0.35)",
            vec!["family", "tier", "outcome", "time [s]", "deadline [s]"],
        );
        for row in &self.rover {
            let verdict = if row.outcome.success {
                "ok"
            } else if row.outcome.deadline_miss {
                "deadline miss"
            } else {
                "incomplete"
            };
            rover.push_row(vec![
                row.family.to_string(),
                row.tier.to_string(),
                verdict.to_string(),
                fmt_f64(row.outcome.time_s),
                fmt_f64(row.outcome.deadline_s),
            ]);
        }
        report.push_table(rover);

        let mut frontier = Table::new(
            "falsification frontier (genetic search over the scenario space)",
            vec!["tier", "easiest failure", "difficulty", "time [s]", "deadline [s]", "evals"],
        );
        for f in &self.falsifications {
            match &f.frontier {
                Some(p) => frontier.push_row(vec![
                    f.tier.to_string(),
                    format!("{} @ level {}", p.family, fmt_f64(p.level)),
                    fmt_f64(p.difficulty),
                    fmt_f64(p.time_s),
                    fmt_f64(p.deadline_s),
                    f.evaluations.to_string(),
                ]),
                None => frontier.push_row(vec![
                    f.tier.to_string(),
                    "survived all".to_string(),
                    format!("> {}", fmt_f64(f.max_difficulty)),
                    "-".to_string(),
                    "-".to_string(),
                    f.evaluations.to_string(),
                ]),
            }
        }
        report.push_table(frontier);

        report.push_note(self.crossover_note());
        report
    }

    /// The crossover statement: where the under-provisioned tier breaks
    /// versus how far the adequate tier survives.
    #[must_use]
    pub fn crossover_note(&self) -> String {
        let micro = &self.falsifications[0];
        let adequate = &self.falsifications[1];
        match (&micro.frontier, &adequate.frontier) {
            (Some(m), None) => format!(
                "crossover: {} is falsified at difficulty {} ({} @ level {}), while {} \
                 survives the entire probed space up to difficulty {}",
                micro.tier,
                fmt_f64(m.difficulty),
                m.family,
                fmt_f64(m.level),
                adequate.tier,
                fmt_f64(adequate.max_difficulty)
            ),
            (Some(m), Some(a)) => format!(
                "crossover: {} fails at difficulty {} vs {} at {} — margin {}",
                micro.tier,
                fmt_f64(m.difficulty),
                adequate.tier,
                fmt_f64(a.difficulty),
                fmt_f64(a.difficulty - m.difficulty)
            ),
            (None, _) => format!(
                "no crossover found: {} survived the probed space (max difficulty {})",
                micro.tier,
                fmt_f64(micro.max_difficulty)
            ),
        }
    }
}

/// Runs E12, deterministic in `seed` and invariant to `M7_THREADS`.
#[must_use]
pub fn run(seed: u64) -> ScenariosResult {
    run_inner(seed, &falsify_cache()).0
}

/// [`run`] with the two falsification searches sharing one
/// content-addressed cache. The result is **bit-identical** to [`run`]
/// — both paths memoize; only the savings figure is surfaced — so the
/// E12 report stays byte-stable whether or not the shared cache is on.
#[must_use]
pub fn run_cached(seed: u64) -> (ScenariosResult, u64) {
    run_inner(seed, &falsify_cache())
}

/// [`run_cached`] over a caller-supplied store — the tiered-cache entry
/// point: with a disk-backed [`m7_serve::tier::TieredCache`], the
/// falsification scores persist across process restarts and a warm
/// re-run answers them all from the store. The [`ScenariosResult`] stays
/// bit-identical regardless of the store's contents.
#[must_use]
pub fn run_cached_with<S: m7_serve::tier::ResultStore<f64>>(
    seed: u64,
    cache: &S,
) -> (ScenariosResult, u64) {
    run_inner(seed, cache)
}

/// A cache big enough for both tiers' namespaces: savings are exact,
/// never eviction-dependent.
fn falsify_cache() -> EvalCache<f64> {
    EvalCache::new(2 * FalsifyConfig::default().space().cardinality())
}

fn run_inner<S: m7_serve::tier::ResultStore<f64>>(seed: u64, cache: &S) -> (ScenariosResult, u64) {
    let par = ParConfig::default();
    let hits_before = cache.hits();

    // Per-generator UAV sweep: the scenario seed depends only on the
    // (family, level, variant) cell, so both tiers fly identical worlds.
    let mut combos = Vec::new();
    for (fi, &family) in Family::ALL.iter().enumerate() {
        for (li, &level) in LEVELS.iter().enumerate() {
            for variant in 0..VARIANTS {
                let cell = ((fi as u64) << 8) | ((li as u64) << 4) | variant;
                let scen_seed = derive_seed(seed, cell);
                for &tier in &TIERS {
                    combos.push((family, level, scen_seed, tier));
                }
            }
        }
    }
    let flights = par.par_map(&combos, |&(family, level, scen_seed, tier)| {
        let s = generate(family, level, scen_seed);
        (s.difficulty(), evaluate_uav(&s, tier, scen_seed))
    });

    let families = Family::ALL
        .iter()
        .map(|&family| {
            let rows: Vec<(&UavCombo, &(f64, ScenOutcome))> =
                combos.iter().zip(&flights).filter(|(c, _)| c.0 == family).collect();
            let tiers = TIERS
                .iter()
                .map(|&tier| {
                    let outs: Vec<&ScenOutcome> =
                        rows.iter().filter(|(c, _)| c.3 == tier).map(|(_, (_, out))| out).collect();
                    FamilyTierStat {
                        tier,
                        successes: outs.iter().filter(|o| o.success).count(),
                        runs: outs.len(),
                        mean_time_s: outs.iter().map(|o| o.time_s).sum::<f64>() / outs.len() as f64,
                    }
                })
                .collect();
            // Each scenario appears once per tier; average over one tier's
            // copy to count every world exactly once.
            let diffs: Vec<f64> =
                rows.iter().filter(|(c, _)| c.3 == TIERS[0]).map(|(_, (d, _))| *d).collect();
            FamilyRow {
                family,
                mean_difficulty: diffs.iter().sum::<f64>() / diffs.len() as f64,
                tiers,
            }
        })
        .collect();

    // Rover spot checks: the same worlds driven with RRT in the loop.
    let rover_combos: Vec<(Family, ComputeTier)> = [Family::Corridor, Family::Forest]
        .into_iter()
        .flat_map(|family| TIERS.into_iter().map(move |tier| (family, tier)))
        .collect();
    let rover = par.par_map(&rover_combos, |&(family, tier)| {
        let scen_seed = derive_seed(seed, 0x9000 | family as u64);
        let s = generate(family, ROVER_LEVEL, scen_seed);
        RoverRow { family, tier, outcome: evaluate_rover(&s, tier, scen_seed) }
    });

    // Adversarial search, one falsification per tier, sharing `cache`
    // (distinct namespaces, so tiers never alias each other's scores).
    let cfg = FalsifyConfig::default();
    let falsifications = TIERS
        .iter()
        .enumerate()
        .map(|(ti, &tier)| {
            falsify_memo(tier, &cfg, derive_seed(seed, 0xF000 | ti as u64), par, cache)
        })
        .collect();

    (ScenariosResult { families, rover, falsifications }, cache.hits() - hits_before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn cached_run_is_bit_identical_and_saves_evaluations() {
        let plain = run(3);
        let (cached, saved) = run_cached(3);
        assert_eq!(plain, cached, "the shared cache must not change the result");
        assert_eq!(plain.report().to_string(), cached.report().to_string());
        assert!(saved > 0, "the genetic searches revisit scenario points");
    }

    #[test]
    fn micro_is_falsified_and_embedded_survives_strictly_harder() {
        let r = run(42);
        let micro = &r.falsifications[0];
        let adequate = &r.falsifications[1];
        let frontier = micro.frontier.as_ref().expect("micro must be falsified");
        match &adequate.frontier {
            None => assert!(
                adequate.max_difficulty > frontier.difficulty,
                "adequate tier survives strictly past micro's frontier"
            ),
            Some(a) => assert!(a.difficulty > frontier.difficulty),
        }
        assert!(r.crossover_note().contains("crossover"));
    }

    #[test]
    fn report_covers_families_tiers_and_frontier() {
        let text = run(2).report().to_string();
        for family in Family::ALL {
            assert!(text.contains(&family.to_string()), "missing {family}");
        }
        assert!(text.contains("micro") && text.contains("embedded"));
        assert!(text.contains("falsification frontier"));
        assert!(text.contains("crossover"));
    }

    #[test]
    fn every_family_has_both_tiers_and_full_runs() {
        let r = run(1);
        assert_eq!(r.families.len(), Family::ALL.len());
        for row in &r.families {
            assert_eq!(row.tiers.len(), TIERS.len());
            for stat in &row.tiers {
                assert_eq!(stat.runs, LEVELS.len() * VARIANTS as usize);
            }
        }
        assert_eq!(r.rover.len(), 4);
    }
}
