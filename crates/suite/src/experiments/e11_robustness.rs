//! E11 — robustness under faults: graceful degradation as a design axis.
//!
//! The paper's Challenge 6 insists that accelerator designs be judged
//! under "real-world effects like reliability and robustness", not just
//! nominal latency. This experiment runs the same UAV, mission, and fault
//! environment through three designs:
//!
//! - **nominal** — the fault-free environment (the number a datasheet
//!   would quote);
//! - **fault-blind** — harsh faults, no recovery machinery: the vehicle
//!   flies its nominal control law into stale frames, dead sensors, and
//!   sagging packs;
//! - **degradation-aware** — the same fault draws, but the stack carries
//!   watchdogs, warm restarts, dead-reckoning coast, a cheap fallback
//!   kernel, and a commanded safe-stop, paying a ~5% monitoring tax on
//!   nominal reaction time.
//!
//! The claim shape: the degradation-aware design dominates on mission
//! success at a modest nominal-latency cost — robustness is bought, not
//! free, and mission-level scoring is what reveals the price is worth
//! paying.

use crate::report::{fmt_f64, Report, Table};
use m7_par::ParConfig;
use m7_sim::campaign::{CampaignConfig, CampaignRunner, RobustnessReport};
use m7_sim::degrade::DegradationPolicy;
use m7_sim::faults::FaultProfile;
use m7_sim::mission::MissionSpec;
use m7_sim::uav::{Uav, UavConfig};
use m7_units::{Joules, Meters, Seconds};
use serde::{Deserialize, Serialize};

/// One design arm of the campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArmRow {
    /// Arm name.
    pub arm: String,
    /// The aggregated campaign metrics.
    pub report: RobustnessReport,
}

/// The E11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessResult {
    /// Monte-Carlo runs per arm.
    pub runs: usize,
    /// Fault-free blind baseline, fault-free aware (the latency tax),
    /// fault-blind, and degradation-aware — in that order.
    pub arms: Vec<ArmRow>,
}

impl RobustnessResult {
    fn arm(&self, name: &str) -> &RobustnessReport {
        &self.arms.iter().find(|a| a.arm == name).expect("arm exists").report
    }

    /// The fault-blind campaign.
    #[must_use]
    pub fn fault_blind(&self) -> &RobustnessReport {
        self.arm("fault-blind")
    }

    /// The degradation-aware campaign.
    #[must_use]
    pub fn degradation_aware(&self) -> &RobustnessReport {
        self.arm("degradation-aware")
    }

    /// Fractional nominal-mission-time cost of carrying the degradation
    /// machinery (aware vs. blind in the fault-free environment).
    #[must_use]
    pub fn nominal_latency_cost(&self) -> f64 {
        let blind = self.arm("nominal").mean_time_s;
        let aware = self.arm("nominal-aware").mean_time_s;
        aware / blind - 1.0
    }

    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E11 — robustness under faults (§2.6)");
        let mut t = Table::new(
            format!("{} seeded fault schedules per arm, shared draws", self.runs),
            vec![
                "design",
                "success",
                "safe-stop",
                "crash",
                "mean time [s]",
                "MTTF [s]",
                "degr p50 [s]",
                "degr p99 [s]",
            ],
        );
        for a in &self.arms {
            let r = &a.report;
            let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), fmt_f64);
            t.push_row(vec![
                a.arm.clone(),
                fmt_f64(r.success_rate()),
                fmt_f64(r.safe_stop_rate()),
                fmt_f64(r.crash_rate()),
                fmt_f64(r.mean_time_s),
                opt(r.mttf_s),
                opt(r.degraded_p50_s),
                opt(r.degraded_p99_s),
            ]);
        }
        report.push_table(t);
        report.push_note(format!(
            "degradation-aware beats fault-blind on mission success ({} vs {}) under \
             identical fault draws, at a {}% nominal-latency cost — robustness is a \
             design output, and it is bought, not free",
            fmt_f64(self.degradation_aware().success_rate()),
            fmt_f64(self.fault_blind().success_rate()),
            fmt_f64(self.nominal_latency_cost() * 100.0),
        ));
        report
    }
}

/// The campaign vehicle: perception-limited (short-range sensing makes
/// reaction latency the speed cap) with a battery sized to finish the
/// mission with margin, but not enough to shrug off sag and blind creep.
fn campaign_uav() -> Uav {
    Uav::new(UavConfig {
        sensor_range: Meters::new(4.0),
        battery: Joules::from_watt_hours(5.5),
        ..UavConfig::default()
    })
}

/// Runs E11 with `runs` Monte-Carlo draws per arm.
#[must_use]
pub fn run_with_runs(seed: u64, runs: usize) -> RobustnessResult {
    run_with_runs_par(seed, runs, ParConfig::default())
}

/// [`run_with_runs`] with an explicit parallel-execution configuration.
/// The result is bit-identical for any `par` — threads change only
/// wall-clock time.
#[must_use]
pub fn run_with_runs_par(seed: u64, runs: usize, par: ParConfig) -> RobustnessResult {
    let mission = MissionSpec::survey(1500.0);
    let horizon = Seconds::new(300.0);
    let arms = [
        ("nominal", FaultProfile::none(), DegradationPolicy::none()),
        ("nominal-aware", FaultProfile::none(), DegradationPolicy::full()),
        ("fault-blind", FaultProfile::harsh(), DegradationPolicy::none()),
        ("degradation-aware", FaultProfile::harsh(), DegradationPolicy::full()),
    ]
    .into_iter()
    .map(|(name, profile, policy)| {
        let runner = CampaignRunner::new(
            campaign_uav(),
            mission.clone(),
            policy,
            CampaignConfig::new(runs, profile, horizon),
        );
        // All arms share `seed`, so arm i's run j sees the same fault
        // draw (same derived seed, same profile) as every other arm with
        // the same profile — an apples-to-apples design comparison.
        ArmRow { arm: name.to_string(), report: runner.run(seed, &par) }
    })
    .collect();
    RobustnessResult { runs, arms }
}

/// Runs E11 with the default campaign size.
#[must_use]
pub fn run(seed: u64) -> RobustnessResult {
    run_with_runs(seed, 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_par::derive_seed;

    /// The seed E11 receives inside `run_all*(42, ..)` — index 10 in
    /// paper order — which is also what the golden report pins.
    fn campaign_seed() -> u64 {
        derive_seed(42, 10)
    }

    #[test]
    fn nominal_environment_is_perfect() {
        let r = run_with_runs(campaign_seed(), 8);
        assert_eq!(r.arm("nominal").success_rate(), 1.0);
        assert_eq!(r.arm("nominal-aware").success_rate(), 1.0);
        assert_eq!(r.arm("nominal").crashes, 0);
    }

    #[test]
    fn awareness_costs_modest_nominal_latency() {
        let r = run_with_runs(campaign_seed(), 8);
        let cost = r.nominal_latency_cost();
        assert!(cost > 0.0, "monitoring must cost something, got {cost}");
        assert!(cost < 0.15, "but the cost must stay modest, got {cost}");
    }

    #[test]
    fn aware_dominates_blind_on_mission_success() {
        let r = run(campaign_seed());
        let blind = r.fault_blind().success_rate();
        let aware = r.degradation_aware().success_rate();
        assert!(
            aware > blind,
            "degradation-aware ({aware}) must strictly beat fault-blind ({blind})"
        );
        assert!(blind < 1.0, "the harsh profile must actually hurt the blind design");
        assert!(
            r.degradation_aware().crash_rate() < r.fault_blind().crash_rate(),
            "awareness must also lose fewer vehicles"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(run_with_runs(7, 6), run_with_runs(7, 6));
    }

    #[test]
    fn report_contains_all_arms() {
        let r = run_with_runs(3, 4);
        let text = r.report().to_string();
        for arm in ["nominal", "fault-blind", "degradation-aware"] {
            assert!(text.contains(arm), "report must list {arm}");
        }
    }
}
