//! E14 — §2.1 at scale: streaming mega-campaigns over scenario space.
//!
//! E12 grades tiers on a small (family × level × variant) grid and
//! finds one frontier point per tier. E14 asks the fleet-scale
//! question: across *every* family and *every* difficulty band, how
//! often does a tier succeed, and how tightly is that probability
//! pinned down? The `m7-camp` engine streams the answer — scenarios
//! are generated, flown, and discarded; only per-stratum Wilson
//! sketches survive — while importance splitting drains budget away
//! from settled strata and concentrates it where the tier flips
//! between success and failure.

use crate::report::{fmt_f64, Report, Table};
use m7_camp::{run_campaign, CampaignOutcome, CampaignPlan};
use m7_par::{derive_seed, ParConfig};
use m7_serve::cache::EvalCache;
use m7_sim::uav::ComputeTier;
use serde::{Deserialize, Serialize};

/// The two platform tiers campaigned: under-provisioned vs. adequate —
/// the same pair E12 falsifies, now measured across the whole envelope.
pub const TIERS: [ComputeTier; 2] = [ComputeTier::Micro, ComputeTier::Embedded];
/// Closed-loop evaluation budget per tier's campaign.
pub const BUDGET: usize = 600;
/// Most-sampled strata shown per tier in the importance table.
pub const TOP_STRATA: usize = 8;

/// The E14 result: one finished campaign per tier, in [`TIERS`] order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Campaign outcomes, one per tier in [`TIERS`] order.
    pub outcomes: Vec<CampaignOutcome>,
}

impl CampaignResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new(
            "E14 — streaming campaigns: stratified coverage with importance splitting (§2.1+§3.1)",
        );

        let mut summary = Table::new(
            "campaign summary (budget streamed through adaptive stratified rounds)",
            vec!["tier", "budget", "strata", "units", "coverage", "anchor", "frontier"],
        );
        for out in &self.outcomes {
            let frontier = match &out.frontier {
                Some(p) => format!("{} @ level {}", p.family, fmt_f64(p.level)),
                None => "survived probe".to_string(),
            };
            summary.push_row(vec![
                out.tier.to_string(),
                out.evaluations.to_string(),
                out.strata.len().to_string(),
                out.units.to_string(),
                fmt_f64(out.coverage),
                fmt_f64(out.anchor),
                frontier,
            ]);
        }
        report.push_table(summary);

        for out in &self.outcomes {
            report.push_table(self.curve_table(out));
        }

        let mut top = Table::new(
            "importance splitting: most-sampled strata per tier",
            vec!["tier", "family", "levels", "draws", "ok", "95% Wilson"],
        );
        for out in &self.outcomes {
            let mut order: Vec<usize> = (0..out.strata.len()).collect();
            order.sort_by(|&a, &b| out.strata[b].draws.cmp(&out.strata[a].draws).then(a.cmp(&b)));
            for &i in order.iter().take(TOP_STRATA) {
                let s = &out.strata[i];
                top.push_row(vec![
                    out.tier.to_string(),
                    s.family.to_string(),
                    format!(
                        "{}-{}",
                        fmt_f64(s.decile as f64 / 10.0),
                        fmt_f64((s.decile + 1) as f64 / 10.0)
                    ),
                    s.draws.to_string(),
                    format!("{}/{}", s.sketch.successes, s.sketch.trials),
                    format!("{}..{}", fmt_f64(s.wilson.0), fmt_f64(s.wilson.1)),
                ]);
            }
        }
        report.push_table(top);

        let mut rounds = Table::new(
            "budget per adaptive round (round 0 = uniform pilot)",
            vec!["tier", "round", "evals", "active strata"],
        );
        for out in &self.outcomes {
            for r in &out.rounds {
                rounds.push_row(vec![
                    out.tier.to_string(),
                    r.round.to_string(),
                    r.evaluations.to_string(),
                    r.active_strata.to_string(),
                ]);
            }
        }
        report.push_table(rounds);

        report.push_note(self.coverage_note());
        report
    }

    /// Per-family success curve of one tier: successes/draws per
    /// difficulty decile.
    fn curve_table(&self, out: &CampaignOutcome) -> Table {
        let mut table = Table::new(
            format!("success curve — {} (ok/draws per difficulty decile)", out.tier),
            vec!["family", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9"],
        );
        let families: Vec<_> = {
            let mut seen = Vec::new();
            for s in &out.strata {
                if !seen.contains(&s.family) {
                    seen.push(s.family);
                }
            }
            seen
        };
        for family in families {
            let mut cells = vec![family.to_string()];
            let mut row: Vec<_> = out.strata.iter().filter(|s| s.family == family).collect();
            row.sort_by_key(|s| s.decile);
            for s in row {
                cells.push(format!("{}/{}", s.sketch.successes, s.sketch.trials));
            }
            table.push_row(cells);
        }
        table
    }

    /// The coverage statement the campaign exists to make.
    #[must_use]
    pub fn coverage_note(&self) -> String {
        let micro = &self.outcomes[0];
        let adequate = &self.outcomes[1];
        format!(
            "coverage: {} pins its success curves to {} after {} streamed evaluations \
             (anchor {}), {} to {} (anchor {}); memory stayed O(strata) = {} sketches per tier",
            micro.tier,
            fmt_f64(micro.coverage),
            micro.evaluations,
            fmt_f64(micro.anchor),
            adequate.tier,
            fmt_f64(adequate.coverage),
            fmt_f64(adequate.anchor),
            micro.strata.len()
        )
    }
}

/// The plan every E14 campaign runs: all families, ten deciles, the
/// default adaptive-round shape, [`BUDGET`] evaluations.
#[must_use]
pub fn plan(tier: ComputeTier) -> CampaignPlan {
    CampaignPlan::new(tier, BUDGET)
}

/// Runs E14, deterministic in `seed` and invariant to `M7_THREADS`.
#[must_use]
pub fn run(seed: u64) -> CampaignResult {
    run_inner(seed, &falsify_cache(), ParConfig::default()).0
}

/// [`run`] on an explicit pool — the hook the thread-count invariance
/// test uses to compare 1 vs 8 workers inside one process.
#[must_use]
pub fn run_with_par(seed: u64, par: ParConfig) -> CampaignResult {
    run_inner(seed, &falsify_cache(), par).0
}

/// [`run`] surfacing how many falsification-probe evaluations the
/// shared store answered. The result is bit-identical to [`run`].
#[must_use]
pub fn run_cached(seed: u64) -> (CampaignResult, u64) {
    run_inner(seed, &falsify_cache(), ParConfig::default())
}

/// [`run_cached`] over a caller-supplied store — with a disk-backed
/// [`m7_serve::tier::TieredCache`], the anchoring probes survive
/// process restarts. The [`CampaignResult`] stays bit-identical
/// regardless of the store's contents.
#[must_use]
pub fn run_cached_with<S: m7_serve::tier::ResultStore<f64>>(
    seed: u64,
    cache: &S,
) -> (CampaignResult, u64) {
    run_inner(seed, cache, ParConfig::default())
}

/// A store sized for both tiers' probe namespaces.
fn falsify_cache() -> EvalCache<f64> {
    EvalCache::new(1024)
}

fn run_inner<S: m7_serve::tier::ResultStore<f64>>(
    seed: u64,
    cache: &S,
    par: ParConfig,
) -> (CampaignResult, u64) {
    let hits_before = cache.hits();
    let outcomes = TIERS
        .iter()
        .enumerate()
        .map(|(ti, &tier)| {
            // Memory-only unit store: E14 itself is a one-shot run; the
            // campaign example wires the disk-backed store for resume.
            let units = EvalCache::new(4096);
            run_campaign(&plan(tier), derive_seed(seed, 0xC000 | ti as u64), par, &units, cache)
        })
        .collect();
    (CampaignResult { outcomes }, cache.hits() - hits_before)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn budget_is_fully_streamed_for_every_tier() {
        let r = run(7);
        assert_eq!(r.outcomes.len(), TIERS.len());
        for out in &r.outcomes {
            assert_eq!(out.evaluations as usize, BUDGET);
            assert_eq!(out.strata.iter().map(|s| s.sketch.trials).sum::<u64>(), BUDGET as u64);
        }
    }

    #[test]
    fn adequate_tier_covers_better_or_equal_success() {
        let r = run(42);
        let micro_ok: u64 = r.outcomes[0].strata.iter().map(|s| s.sketch.successes).sum();
        let embedded_ok: u64 = r.outcomes[1].strata.iter().map(|s| s.sketch.successes).sum();
        assert!(
            embedded_ok >= micro_ok,
            "embedded ({embedded_ok}) must succeed at least as often as micro ({micro_ok})"
        );
    }

    #[test]
    fn report_covers_tiers_curves_and_rounds() {
        let text = run(2).report().to_string();
        assert!(text.contains("campaign summary"));
        assert!(text.contains("success curve — micro"));
        assert!(text.contains("success curve — embedded"));
        assert!(text.contains("importance splitting"));
        assert!(text.contains("budget per adaptive round"));
        assert!(text.contains("coverage:"));
    }

    #[test]
    fn cached_run_is_bit_identical() {
        let plain = run(3);
        let (cached, _saved) = run_cached(3);
        assert_eq!(plain, cached, "the shared store must not change the result");
    }
}
