//! E15 — multi-rate sensor fusion on the dataflow runtime (§2.5 + §2.6).
//!
//! A 30 Hz HD camera and a 100 Hz IMU feed a fusion node: the camera
//! triggers it through a bounded drop-newest queue, the IMU publishes
//! its freshest state over a sampled edge. Fused tracks flow through a
//! backpressured capacity-1 queue into a planner and on to the control
//! sink, which carries the end-to-end deadline. The *same graph* is
//! then run under three placements:
//!
//! 1. **unified SoC** — fusion and planner share one CPU-SIMD die and
//!    one memory bus, so the camera stream's bandwidth demand stretches
//!    both services (§2.6's contention tax);
//! 2. **heterogeneous** — fusion on the GPU, the planner on a small
//!    collision ASIC described in the `m7-arch` spec DSL (§2.5);
//! 3. **heterogeneous @ DVFS** — the same silicon down-clocked to half
//!    frequency, trading deadline slack for energy.
//!
//! The run is a deterministic virtual-time simulation: the report is a
//! pure function of the seed, bit-identical at any thread count.

use crate::report::{fmt_f64, Report, Table};
use m7_arch::dvfs::OperatingPoint;
use m7_arch::platform::PlatformKind;
use m7_arch::workload::KernelProfile;
use m7_flow::{
    EdgeSpec, FlowError, Graph, GraphBuilder, GraphReport, LossModel, MessageType, Placement,
    QueuePolicy, ServerSpec, Service, SinkSpec, SourceSpec,
};
use m7_par::ParConfig;
use m7_units::{Bytes, BytesPerSecond, Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// Simulated horizon in seconds.
pub const DURATION_S: f64 = 2.0;
/// Camera rate.
pub const CAMERA_HZ: f64 = 30.0;
/// IMU rate.
pub const IMU_HZ: f64 = 100.0;
/// HD camera payload (16-bit pixels).
pub const CAMERA_BYTES: f64 = 1920.0 * 1080.0 * 2.0;
/// Wireless-ish camera link loss probability per frame.
pub const CAMERA_LOSS: f64 = 0.02;

/// The planner ASIC, in the spec DSL a domain expert would write.
pub const PLANNER_ASIC_SPEC: &str = "\
# capacity-1 backpressured motion planner
kind           = asic
name           = planner-asic
peak_tops      = 2.0
bandwidth_gbps = 64
active_w       = 8
idle_w         = 0.6
specialize     = families collision-geometry
fallback       = 0.05
";

struct CameraFrame;
impl MessageType for CameraFrame {
    const NAME: &'static str = "camera_frame";
}
struct ImuState;
impl MessageType for ImuState {
    const NAME: &'static str = "imu_state";
}
struct FusedTrack;
impl MessageType for FusedTrack {
    const NAME: &'static str = "fused_track";
}
struct TrajectoryPlan;
impl MessageType for TrajectoryPlan {
    const NAME: &'static str = "trajectory_plan";
}

/// One placement of the fusion graph.
struct Deployment {
    label: &'static str,
    /// Shared bus backing a unified SoC, if any.
    site: Option<(&'static str, BytesPerSecond)>,
    fusion: Placement,
    planner: Placement,
}

fn deployments() -> Vec<Deployment> {
    let half = OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 };
    let asic = || Placement::from_spec(PLANNER_ASIC_SPEC).expect("planner spec parses");
    vec![
        Deployment {
            label: "unified SoC (CPU-SIMD, shared bus)",
            site: Some(("soc", BytesPerSecond::from_gigabytes_per_second(0.06))),
            fusion: Placement::preset(PlatformKind::CpuSimd).at_site("soc"),
            planner: Placement::preset(PlatformKind::CpuSimd).at_site("soc"),
        },
        Deployment {
            label: "hetero (GPU + planner ASIC)",
            site: None,
            fusion: Placement::preset(PlatformKind::Gpu),
            planner: asic(),
        },
        Deployment {
            label: "hetero @ DVFS 0.5f/0.8V",
            site: None,
            fusion: Placement::preset(PlatformKind::Gpu).with_point(half),
            planner: asic().with_point(half),
        },
    ]
}

/// Builds the canonical E15 graph under one deployment.
fn build(dep: &Deployment, par: ParConfig) -> Result<Graph, FlowError> {
    let mut g = GraphBuilder::new("e15");
    if let Some((name, capacity)) = &dep.site {
        g.shared_site(*name, *capacity);
    }
    let camera = g.source::<CameraFrame>(
        "camera",
        SourceSpec::new(Hertz::new(CAMERA_HZ), Bytes::new(CAMERA_BYTES)),
    )?;
    let imu = g.source::<ImuState>("imu", SourceSpec::new(Hertz::new(IMU_HZ), Bytes::new(24.0)))?;
    let fusion = g.fusion_server::<CameraFrame, ImuState, FusedTrack>(
        "fusion",
        ServerSpec::new(Service::kernel(KernelProfile::feature_extract(1920, 1080)))
            .output_bytes(Bytes::new(4096.0))
            .deadline(Seconds::from_millis(40.0)),
    )?;
    let planner = g.server::<FusedTrack, TrajectoryPlan>(
        "planner",
        ServerSpec::new(Service::kernel(KernelProfile::collision_batch(60_000, 2000)))
            .output_bytes(Bytes::new(512.0))
            .deadline(Seconds::from_millis(60.0)),
    )?;
    let control =
        g.sink::<TrajectoryPlan>("control", SinkSpec::new().deadline(Seconds::from_millis(100.0)))?;
    g.place(fusion, dep.fusion.clone())?;
    g.place(planner, dep.planner.clone())?;
    g.connect(camera, fusion, EdgeSpec::queue(2).loss(LossModel::constant(CAMERA_LOSS)))?;
    g.connect(imu, fusion, EdgeSpec::sampled())?;
    g.connect(fusion, planner, EdgeSpec::queue(1).policy(QueuePolicy::Block))?;
    g.connect(planner, control, EdgeSpec::wire().latency(Seconds::from_millis(2.0)))?;
    g.seal(par)
}

/// What one deployment did with the multi-rate traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentOutcome {
    /// Deployment label.
    pub label: String,
    /// Effective fusion platform (after DVFS).
    pub fusion_platform: String,
    /// Effective planner platform (after DVFS).
    pub planner_platform: String,
    /// Post-contention fusion service time, ms.
    pub fusion_service_ms: f64,
    /// Post-contention planner service time, ms.
    pub planner_service_ms: f64,
    /// Contention stretch on the fusion service (1.0 = no contention).
    pub fusion_slowdown: f64,
    /// Camera frames emitted.
    pub frames_fired: u64,
    /// IMU samples emitted.
    pub imu_fired: u64,
    /// Frames dropped by the bounded camera queue.
    pub frames_dropped: u64,
    /// Frames lost on the camera link.
    pub frames_lost: u64,
    /// IMU samples overwritten before fusion read them.
    pub imu_superseded: u64,
    /// Times fusion parked on the planner's full queue.
    pub fusion_blocked: u64,
    /// Trajectory plans delivered to control.
    pub commands: u64,
    /// Deadline misses across fusion, planner, and control.
    pub deadline_misses: u64,
    /// Mean end-to-end latency at the control sink, ms.
    pub mean_latency_ms: f64,
    /// p99 end-to-end latency at the control sink, ms.
    pub p99_latency_ms: f64,
    /// Modeled compute energy (fusion + planner), joules.
    pub compute_energy_j: f64,
}

fn summarize(label: &str, r: &GraphReport) -> DeploymentOutcome {
    let fusion = r.node("fusion").expect("fusion node");
    let planner = r.node("planner").expect("planner node");
    let control = r.node("control").expect("control node");
    let cam_edge = r.edge("camera", "fusion").expect("camera edge");
    let imu_edge = r.edge("imu", "fusion").expect("imu edge");
    let plan_edge = r.edge("fusion", "planner").expect("planner edge");
    let to_ms = |s: Seconds| s.value() * 1e3;
    DeploymentOutcome {
        label: label.to_string(),
        fusion_platform: fusion.platform.clone().unwrap_or_default(),
        planner_platform: planner.platform.clone().unwrap_or_default(),
        fusion_service_ms: fusion.service.map_or(0.0, to_ms),
        planner_service_ms: planner.service.map_or(0.0, to_ms),
        fusion_slowdown: fusion.slowdown,
        frames_fired: r.node("camera").expect("camera node").fired,
        imu_fired: r.node("imu").expect("imu node").fired,
        frames_dropped: cam_edge.dropped,
        frames_lost: cam_edge.lost,
        imu_superseded: imu_edge.superseded,
        fusion_blocked: plan_edge.blocked,
        commands: control.received,
        deadline_misses: fusion.deadline_misses + planner.deadline_misses + control.deadline_misses,
        mean_latency_ms: to_ms(control.mean_latency),
        p99_latency_ms: to_ms(control.p99_latency),
        compute_energy_j: fusion.energy_j + planner.energy_j,
    }
}

/// The E15 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionResult {
    /// Simulated horizon, seconds.
    pub duration_s: f64,
    /// One outcome per deployment, in [`deployments`] order.
    pub outcomes: Vec<DeploymentOutcome>,
}

impl FusionResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report =
            Report::new("E15 — multi-rate fusion graph: placement, DVFS, backpressure (§2.5+§2.6)");
        let mut placement = Table::new(
            "placement and post-contention service",
            vec![
                "deployment",
                "fusion on",
                "planner on",
                "fusion svc [ms]",
                "planner svc [ms]",
                "bus slowdown",
                "energy [J]",
            ],
        );
        let mut traffic = Table::new(
            "multi-rate traffic, backpressure, deadlines",
            vec![
                "deployment",
                "dropped",
                "lost",
                "imu superseded",
                "blocked",
                "plans out",
                "deadline misses",
                "mean e2e [ms]",
                "p99 e2e [ms]",
            ],
        );
        for o in &self.outcomes {
            placement.push_row(vec![
                o.label.clone(),
                o.fusion_platform.clone(),
                o.planner_platform.clone(),
                fmt_f64(o.fusion_service_ms),
                fmt_f64(o.planner_service_ms),
                fmt_f64(o.fusion_slowdown),
                fmt_f64(o.compute_energy_j),
            ]);
            traffic.push_row(vec![
                o.label.clone(),
                o.frames_dropped.to_string(),
                o.frames_lost.to_string(),
                o.imu_superseded.to_string(),
                o.fusion_blocked.to_string(),
                o.commands.to_string(),
                o.deadline_misses.to_string(),
                fmt_f64(o.mean_latency_ms),
                fmt_f64(o.p99_latency_ms),
            ]);
        }
        report.push_table(placement);
        report.push_table(traffic);
        let [soc, hetero, dvfs] = &self.outcomes[..] else {
            return report;
        };
        report.push_note(format!(
            "same graph, three placements: the unified SoC stretches fusion {}x under bus \
             contention and drops {} of {} frames; the GPU+ASIC split keeps every deadline",
            fmt_f64(soc.fusion_slowdown),
            soc.frames_dropped,
            soc.frames_fired,
        ));
        report.push_note(format!(
            "the 100 Hz IMU is sampled, not queued: {} of {} samples are superseded unread — \
             backpressure-free fusion of fast sensors",
            dvfs.imu_superseded, dvfs.imu_fired,
        ));
        report.push_note(format!(
            "halving the clock cuts compute energy {} -> {} J but costs {} deadline misses \
             (p99 {} -> {} ms)",
            fmt_f64(hetero.compute_energy_j),
            fmt_f64(dvfs.compute_energy_j),
            dvfs.deadline_misses,
            fmt_f64(hetero.p99_latency_ms),
            fmt_f64(dvfs.p99_latency_ms),
        ));
        report
    }
}

/// Runs E15: the three deployments of the canonical fusion graph.
///
/// `seed` drives the camera-link loss draws; `par` sizes the batch pool
/// the graph seals and runs on. The result is bit-identical for a given
/// seed at any thread count.
#[must_use]
pub fn run(seed: u64, par: ParConfig) -> FusionResult {
    let duration = Seconds::new(DURATION_S);
    let outcomes = deployments()
        .into_iter()
        .map(|dep| {
            let graph = build(&dep, par).expect("e15 graph is statically valid");
            let report = graph.run_seeded(duration, seed).expect("duration is valid");
            summarize(dep.label, &report)
        })
        .collect();
    FusionResult { duration_s: DURATION_S, outcomes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_deployments_of_one_graph() {
        let r = run(7, ParConfig::serial());
        assert_eq!(r.outcomes.len(), 3);
        for o in &r.outcomes {
            assert_eq!(o.frames_fired, 60, "{}: 2 s of 30 Hz", o.label);
            assert!(o.imu_fired >= 200, "{}: 2 s of 100 Hz", o.label);
            assert!(o.commands > 0, "{}: control must receive plans", o.label);
        }
    }

    #[test]
    fn unified_soc_pays_contention_and_drops_frames() {
        let r = run(7, ParConfig::serial());
        let soc = &r.outcomes[0];
        let hetero = &r.outcomes[1];
        assert!(soc.fusion_slowdown > 1.0, "shared bus must stretch fusion");
        assert!(soc.frames_dropped > 0, "overloaded fusion must shed frames");
        assert!(hetero.fusion_slowdown == 1.0 && hetero.frames_dropped == 0);
        assert!(hetero.p99_latency_ms < soc.p99_latency_ms);
    }

    #[test]
    fn dvfs_trades_energy_for_deadline_slack() {
        let r = run(7, ParConfig::serial());
        let hetero = &r.outcomes[1];
        let dvfs = &r.outcomes[2];
        assert!(dvfs.compute_energy_j < hetero.compute_energy_j);
        assert!(dvfs.p99_latency_ms > hetero.p99_latency_ms);
        assert!(dvfs.deadline_misses >= hetero.deadline_misses);
    }

    #[test]
    fn sampled_imu_never_backpressures() {
        let r = run(7, ParConfig::serial());
        for o in &r.outcomes {
            assert!(o.imu_superseded > 0, "{}: fast sensor must supersede", o.label);
            assert!(
                o.imu_superseded + o.commands <= o.imu_fired + o.frames_fired,
                "{}: sanity",
                o.label
            );
        }
    }

    #[test]
    fn result_is_thread_count_invariant() {
        let serial = run(11, ParConfig::serial());
        let wide = run(11, ParConfig::with_threads(8));
        assert_eq!(serial, wide);
    }

    #[test]
    fn report_renders_all_deployments() {
        let text = run(7, ParConfig::serial()).report().to_string();
        assert!(text.contains("unified SoC"));
        assert!(text.contains("planner-asic"));
        assert!(text.contains("DVFS"));
    }
}
