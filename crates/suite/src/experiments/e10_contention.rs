//! E10 — the "accelerators are not free" ablation (Challenge 4).
//!
//! Two tables:
//!
//! 1. **Bus contention.** Identical accelerators are added to an SoC
//!    sharing one DRAM bus; per-unit throughput degrades and aggregate
//!    throughput saturates at bus capacity.
//! 2. **Sensor/compute balance.** For a fixed camera, platforms are
//!    compared on frame drop rate: past the rate needed to keep up,
//!    additional compute buys nothing but mass and power (ties into E5).

use crate::report::{fmt_f64, Report, Table};
use m7_arch::contention::{scaling_under_contention, SharedBus};
use m7_arch::platform::{Platform, PlatformKind};
use m7_arch::workload::KernelProfile;
use m7_sim::pipeline::Pipeline;
use m7_sim::sensor::{SensorKind, SensorSpec};
use m7_units::{Bytes, BytesPerSecond, Hertz, Seconds};
use serde::{Deserialize, Serialize};

/// The E10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionResult {
    /// `(number of accelerators, per-unit scale, aggregate scale)`.
    pub scaling_rows: Vec<(usize, f64, f64)>,
    /// `(platform, drop rate, mean latency ms)` for the fixed camera.
    pub balance_rows: Vec<(String, f64, f64)>,
}

impl ContentionResult {
    /// Renders the report.
    #[must_use]
    pub fn report(&self) -> Report {
        let mut report = Report::new("E10 — accelerators are not free: contention (§2.4)");
        let mut t = Table::new(
            "identical accelerators sharing a 12 GB/s DRAM bus (4 GB/s each)",
            vec!["accelerators", "per-unit throughput", "aggregate throughput"],
        );
        for &(n, per, agg) in &self.scaling_rows {
            t.push_row(vec![n.to_string(), fmt_f64(per), fmt_f64(agg)]);
        }
        report.push_table(t);

        let mut b = Table::new(
            "sensor/compute balance: 30 fps full-HD camera",
            vec!["platform", "frame drop rate", "mean latency [ms]"],
        );
        for (name, drops, lat) in &self.balance_rows {
            b.push_row(vec![name.clone(), fmt_f64(*drops), fmt_f64(*lat)]);
        }
        report.push_table(b);
        report.push_note(
            "per-unit throughput falls as accelerators are added (shared-bus slowdown); and \
             once a platform keeps up with the sensor, faster platforms no longer reduce \
             drops — balance, not maximum, is the design target",
        );
        report
    }
}

/// Runs E10.
#[must_use]
pub fn run() -> ContentionResult {
    let bus = SharedBus::new(BytesPerSecond::from_gigabytes_per_second(12.0));
    let per_unit_demand = BytesPerSecond::from_gigabytes_per_second(4.0);
    let scaling_rows = (1..=8)
        .map(|n| {
            let (agg, per) = scaling_under_contention(&bus, per_unit_demand, n);
            (n, per, agg)
        })
        .collect();

    let sensor =
        SensorSpec::new(SensorKind::Camera, Hertz::new(30.0), Bytes::new(1920.0 * 1080.0), 2.0);
    let kernel = KernelProfile::feature_extract(1920, 1080);
    let balance_rows =
        [PlatformKind::CpuScalar, PlatformKind::CpuSimd, PlatformKind::Gpu, PlatformKind::Asic]
            .iter()
            .map(|&kind| {
                let p = Pipeline::new(sensor.clone(), Platform::preset(kind), kernel.clone());
                let stats = p.simulate(Seconds::new(10.0));
                (
                    Platform::preset(kind).name().to_string(),
                    stats.drop_rate(),
                    stats.mean_latency.as_millis(),
                )
            })
            .collect();

    ContentionResult { scaling_rows, balance_rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_unit_throughput_degrades() {
        let r = run();
        for w in r.scaling_rows.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "per-unit must not improve with contention");
        }
        let first = r.scaling_rows[0].1;
        let last = r.scaling_rows[7].1;
        assert!(last < first * 0.5, "8-way sharing should at least halve per-unit: {last}");
    }

    #[test]
    fn aggregate_saturates() {
        let r = run();
        let agg4 = r.scaling_rows[3].2;
        let agg8 = r.scaling_rows[7].2;
        assert!(agg8 <= agg4 * 1.1, "aggregate flat past saturation: {agg4} → {agg8}");
    }

    #[test]
    fn balance_point_exists() {
        let r = run();
        let drop = |name: &str| {
            r.balance_rows
                .iter()
                .find(|(n, _, _)| n == name)
                .map(|&(_, d, _)| d)
                .expect("platform present")
        };
        assert!(drop("cpu-scalar") > 0.1, "scalar cannot keep up");
        assert!(drop("cpu-simd") < 0.01, "SIMD already keeps up");
        // Past the balance point more compute does not reduce drops.
        assert!(drop("gpu-embedded") <= drop("cpu-simd") + 1e-9);
        assert!(drop("asic") <= drop("cpu-simd") + 1e-9);
    }

    #[test]
    fn report_renders() {
        let text = run().report().to_string();
        assert!(text.contains("DRAM bus"));
        assert!(text.contains("balance"));
    }
}
