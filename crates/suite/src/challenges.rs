//! The Magnificent Seven challenge taxonomy itself, as a typed API.
//!
//! The paper's primary contribution *is* this taxonomy; encoding it makes
//! the framework self-describing: every experiment declares which
//! challenge it evidences, and tooling (reports, docs, the
//! `run_experiments` binary) can group results by challenge.

use crate::experiments::ExperimentId;
use serde::{Deserialize, Serialize};

/// The seven challenges, in paper order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Challenge {
    /// §2.1 — engage with domain experts.
    BuildBridges,
    /// §2.2 — metrics matter.
    MetricsMatter,
    /// §2.3 — avoid over-specialization.
    Widgetism,
    /// §2.4 — do not always accelerate.
    PumpTheBrakes,
    /// §2.5 — acceleration beyond ASICs.
    ChipsAndSalsa,
    /// §2.6 — take an end-to-end view.
    ForestVsTrees,
    /// §2.7 — sustainability and impact.
    DesignGlobal,
}

impl Challenge {
    /// All seven, in paper order.
    pub const ALL: [Self; 7] = [
        Self::BuildBridges,
        Self::MetricsMatter,
        Self::Widgetism,
        Self::PumpTheBrakes,
        Self::ChipsAndSalsa,
        Self::ForestVsTrees,
        Self::DesignGlobal,
    ];

    /// The paper's section number.
    #[must_use]
    pub fn section(self) -> &'static str {
        match self {
            Self::BuildBridges => "2.1",
            Self::MetricsMatter => "2.2",
            Self::Widgetism => "2.3",
            Self::PumpTheBrakes => "2.4",
            Self::ChipsAndSalsa => "2.5",
            Self::ForestVsTrees => "2.6",
            Self::DesignGlobal => "2.7",
        }
    }

    /// The paper's title for the challenge.
    #[must_use]
    pub fn title(self) -> &'static str {
        match self {
            Self::BuildBridges => "Build Bridges: Engage with Domain Experts",
            Self::MetricsMatter => "Measure Twice, Cut Once: Metrics Matter",
            Self::Widgetism => "\"Widgetism\": Avoid Over-Specialization",
            Self::PumpTheBrakes => "Pump the Brakes: Do Not Always Accelerate",
            Self::ChipsAndSalsa => "Chips and Salsa: Acceleration Beyond ASICs",
            Self::ForestVsTrees => "Forest vs. Trees: Take an End-to-End View",
            Self::DesignGlobal => "Design Global: Sustainability and Impact",
        }
    }

    /// The paper's one-line pitfall statement.
    #[must_use]
    pub fn pitfall(self) -> &'static str {
        match self {
            Self::BuildBridges => {
                "interact with domains exclusively through benchmarks published in computer \
                 systems, without input from domain experts"
            }
            Self::MetricsMatter => "only focus on improving throughput or energy-delay product",
            Self::Widgetism => "a cycle of pick one slow algorithm, lower it to an ASIC, repeat",
            Self::PumpTheBrakes => "assume accelerators always improve total system performance",
            Self::ChipsAndSalsa => "focus on ASICs, leaving software, GPUs, and FPGAs behind",
            Self::ForestVsTrees => "a narrow scope: acceleration begins and ends with compute",
            Self::DesignGlobal => "design compute in isolation from its global and societal impact",
        }
    }

    /// The experiments that evidence this challenge.
    #[must_use]
    pub fn experiments(self) -> &'static [ExperimentId] {
        match self {
            Self::BuildBridges => &[ExperimentId::E2Bridges],
            Self::MetricsMatter => &[ExperimentId::E3Metrics],
            Self::Widgetism => &[ExperimentId::E4Widgetism],
            Self::PumpTheBrakes => &[ExperimentId::E5Brakes, ExperimentId::E10Contention],
            Self::ChipsAndSalsa => &[ExperimentId::E6Platforms],
            Self::ForestVsTrees => &[ExperimentId::E7EndToEnd, ExperimentId::E11Robustness],
            Self::DesignGlobal => &[ExperimentId::E8Global],
        }
    }

    /// The challenge (if any) an experiment evidences.
    #[must_use]
    pub fn of_experiment(id: ExperimentId) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.experiments().contains(&id))
    }
}

impl core::fmt::Display for Challenge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "§{} {}", self.section(), self.title())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_challenges_in_order() {
        assert_eq!(Challenge::ALL.len(), 7);
        for w in Challenge::ALL.windows(2) {
            assert!(w[0] < w[1], "paper order must be preserved");
        }
        assert_eq!(Challenge::ALL[0].section(), "2.1");
        assert_eq!(Challenge::ALL[6].section(), "2.7");
    }

    #[test]
    fn every_challenge_has_evidence() {
        for c in Challenge::ALL {
            assert!(!c.experiments().is_empty(), "{c} has no experiment");
            assert!(!c.pitfall().is_empty());
        }
    }

    #[test]
    fn experiment_lookup_is_consistent() {
        for c in Challenge::ALL {
            for &e in c.experiments() {
                assert_eq!(Challenge::of_experiment(e), Some(c));
            }
        }
        // E1 (Fig. 1) and E9 (§3.1) are not challenge sections.
        assert_eq!(Challenge::of_experiment(ExperimentId::E1Growth), None);
        assert_eq!(Challenge::of_experiment(ExperimentId::E9Dse), None);
    }

    #[test]
    fn display_carries_section() {
        assert_eq!(
            Challenge::PumpTheBrakes.to_string(),
            "§2.4 Pump the Brakes: Do Not Always Accelerate"
        );
    }
}
