/root/repo/crates/shims/rand/target/debug/deps/rand-5d0eab68ff55149a.d: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/librand-5d0eab68ff55149a.rlib: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/librand-5d0eab68ff55149a.rmeta: src/lib.rs

src/lib.rs:
