/root/repo/crates/shims/rand/target/debug/deps/rand-731bd286f094d1f8.d: src/lib.rs

/root/repo/crates/shims/rand/target/debug/deps/rand-731bd286f094d1f8: src/lib.rs

src/lib.rs:
