//! Offline vendored stand-in for `rand` 0.8.
//!
//! This build environment has no network route to a cargo registry, so
//! the workspace vendors the subset of the `rand` API it actually uses
//! (see `crates/shims/README.md`): [`RngCore`], [`SeedableRng`] (with
//! the SplitMix64-based `seed_from_u64` expansion), and the [`Rng`]
//! extension trait with `gen_range` over half-open and inclusive ranges
//! plus `gen_bool`.
//!
//! Numeric streams are *not* guaranteed to match the real `rand` crate
//! bit-for-bit; every test in this repository asserts determinism by
//! comparing two runs of the same seeded code path, never against
//! golden values from the upstream implementation, so only internal
//! consistency matters.

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through
    /// SplitMix64 exactly like `rand_core`'s default implementation
    /// expands small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used for seed expansion and as the engine of the
/// vendored [`rngs::StdRng`] / [`rngs::SmallRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply range reduction (Lemire); the bias at
                // 64-bit spans is below observability for simulation use.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $mant:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low must be < high");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / (1u64 << $mant) as $t;
                let v = low + (high - low) * unit;
                // Floating rounding can land exactly on `high`; clamp into
                // the half-open interval the way rand's uniform does.
                if v < high { v } else { high.next_down().max(low) }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: low must be <= high");
                let unit = (rng.next_u64() >> (64 - $mant)) as $t
                    / ((1u64 << $mant) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

uniform_float!(f32 => 24, f64 => 53);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1], got {p}");
        // 53-bit uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Draws a uniform value of a [`Standard`](distributions::Standard)
    /// type (floats in `[0, 1)`, full-width integers, fair bools).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal counterpart of `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// Types drawable via [`super::Rng::gen`].
    pub trait Standard: Sized {
        /// Draws one value.
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for f64 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl Standard for f32 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
        }
    }

    impl Standard for u32 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl Standard for u64 {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for bool {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Minimal counterpart of `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A fast, seedable, non-cryptographic generator (SplitMix64 here;
    /// the real crate uses xoshiro/ChaCha depending on the alias).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(SplitMix64);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: Self::Seed) -> Self {
            Self(SplitMix64::new(u64::from_le_bytes(seed)))
        }
    }

    /// The default generator alias.
    pub type StdRng = SmallRng;
}

/// Minimal counterpart of `rand::seq`: slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension for random selection and shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher-Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y: usize = rng.gen_range(3..9);
            assert!((3..9).contains(&y));
            let z: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let w: i64 = rng.gen_range(-10..=10);
            assert!((-10..=10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
