//! Offline vendored stand-in for `rand_chacha`.
//!
//! Implements a genuine ChaCha stream-cipher keystream generator (the
//! same algorithm family as the upstream crate) behind the vendored
//! [`rand`] shim's traits. Streams are **not** guaranteed to be
//! bit-compatible with the upstream `rand_chacha` — every determinism
//! test in this repository compares two runs of the same seeded code,
//! never upstream golden values — but the statistical quality is the
//! real thing: a full ChaCha quarter-round core over a 256-bit key with
//! a 64-bit block counter.

use rand::{RngCore, SeedableRng};

/// One ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha keystream generator with `R` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const ROUNDS: usize> {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12-13 of the state).
    counter: u64,
    /// 64-bit stream id (words 14-15 of the state).
    stream: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block`; 16 means exhausted.
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    fn refill(&mut self) {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&Self::SIGMA);
        s[4..12].copy_from_slice(&self.key);
        s[12] = self.counter as u32;
        s[13] = (self.counter >> 32) as u32;
        s[14] = self.stream as u32;
        s[15] = (self.stream >> 32) as u32;
        let input = s;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut s, 0, 4, 8, 12);
            quarter(&mut s, 1, 5, 9, 13);
            quarter(&mut s, 2, 6, 10, 14);
            quarter(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut s, 0, 5, 10, 15);
            quarter(&mut s, 1, 6, 11, 12);
            quarter(&mut s, 2, 7, 8, 13);
            quarter(&mut s, 3, 4, 9, 14);
        }
        for (out, inp) in s.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.block = s;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Selects an independent keystream (matches the upstream
    /// `set_stream` API shape).
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = 16;
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self { key, counter: 0, stream: 0, block: [0; 16], index: 16 }
    }
}

/// ChaCha with 8 rounds — the fast simulation-grade variant.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds — the full-strength variant.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_matches_rfc7539_zero_vector() {
        // RFC 7539 Appendix A.1 test vector #1: all-zero key and nonce,
        // block counter 0. First keystream bytes:
        // 76 b8 e0 ad a0 f1 3d 90 40 5d 6a e5 53 86 bd 28 ...
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let expected: [u32; 8] = [
            0xade0_b876, 0x903d_f1a0, 0xe56a_5d40, 0x28bd_8653, 0xb819_d2bd, 0x1aed_8da0,
            0xccef_36a8, 0xc70d_778b,
        ];
        for &want in &expected {
            assert_eq!(rng.next_u32(), want, "keystream diverges from RFC 7539");
        }
    }

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn distinct_streams_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        b.set_stream(9);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let bit_rate = ones as f64 / 32_000.0;
        assert!((bit_rate - 0.5).abs() < 0.01, "bit rate {bit_rate}");
    }
}
