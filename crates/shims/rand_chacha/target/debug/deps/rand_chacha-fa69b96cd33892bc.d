/root/repo/crates/shims/rand_chacha/target/debug/deps/rand_chacha-fa69b96cd33892bc.d: src/lib.rs

/root/repo/crates/shims/rand_chacha/target/debug/deps/librand_chacha-fa69b96cd33892bc.rlib: src/lib.rs

/root/repo/crates/shims/rand_chacha/target/debug/deps/librand_chacha-fa69b96cd33892bc.rmeta: src/lib.rs

src/lib.rs:
