/root/repo/crates/shims/rand_chacha/target/debug/deps/rand_chacha-5c5888a9bedae8e5.d: src/lib.rs

/root/repo/crates/shims/rand_chacha/target/debug/deps/rand_chacha-5c5888a9bedae8e5: src/lib.rs

src/lib.rs:
