/root/repo/crates/shims/rand_chacha/target/debug/deps/rand-25e0913f51bcf973.d: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand_chacha/target/debug/deps/librand-25e0913f51bcf973.rlib: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand_chacha/target/debug/deps/librand-25e0913f51bcf973.rmeta: /root/repo/crates/shims/rand/src/lib.rs

/root/repo/crates/shims/rand/src/lib.rs:
