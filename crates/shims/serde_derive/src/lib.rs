//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors a minimal implementation (see `crates/shims/README.md`). The
//! repository uses `#[derive(Serialize, Deserialize)]` purely as metadata
//! on result/config types — nothing is actually serialized to a wire
//! format yet — so the derives here validate and accept the annotation
//! while emitting a marker-trait impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(name, generics-ident-list)` from a struct/enum definition.
///
/// This is a deliberately small parser: it finds the `struct`/`enum`
/// keyword, takes the following identifier, and (when a `<...>` generics
/// list follows) collects the type/lifetime parameter names so the
/// emitted impl can repeat them.
fn type_header(input: &TokenStream) -> Option<(String, Vec<String>)> {
    let mut iter = input.clone().into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let mut params = Vec::new();
                    if let Some(TokenTree::Punct(p)) = iter.peek() {
                        if p.as_char() == '<' {
                            iter.next();
                            let mut depth = 1usize;
                            let mut expecting_param = true;
                            while let Some(tt) = iter.next() {
                                match tt {
                                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                                    TokenTree::Punct(p) if p.as_char() == '>' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                                        expecting_param = true;
                                    }
                                    TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                                        // Lifetime: the next ident is its name.
                                        if expecting_param {
                                            if let Some(TokenTree::Ident(l)) = iter.next() {
                                                params.push(format!("'{l}"));
                                                expecting_param = false;
                                            }
                                        }
                                    }
                                    TokenTree::Ident(id) if depth == 1 && expecting_param => {
                                        let s = id.to_string();
                                        if s != "const" {
                                            params.push(s);
                                            expecting_param = false;
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    }
                    return Some((name.to_string(), params));
                }
            }
        }
        // Skip attribute bodies and where clauses wholesale.
        if let TokenTree::Group(g) = &tt {
            if g.delimiter() == Delimiter::Brace {
                break;
            }
        }
    }
    None
}

fn marker_impl(trait_name: &str, input: TokenStream) -> TokenStream {
    let Some((name, params)) = type_header(&input) else {
        return TokenStream::new();
    };
    let generics = if params.is_empty() {
        String::new()
    } else {
        format!("<{}>", params.join(", "))
    };
    format!("impl{generics} serde::{trait_name} for {name}{generics} {{}}")
        .parse()
        .unwrap_or_default()
}

/// Derives the vendored marker [`serde::Serialize`] trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", input)
}

/// Derives the vendored marker [`serde::Deserialize`] trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", input)
}
