//! Offline vendored stand-in for `serde`.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the minimal subset it uses (see `crates/shims/README.md`).
//! The repository annotates result/config types with
//! `#[derive(Serialize, Deserialize)]` as forward-looking metadata; no
//! code serializes through the traits yet, so they are marker traits
//! here. Swapping the real `serde` back in requires only deleting the
//! `[patch.crates-io]` entry at the workspace root.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
///
/// The real trait carries a deserializer lifetime; the marker does not
/// need one, and the derive emits an impl without it.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// Blanket coverage for std types that the real serde implements, so
// manual `T: Serialize` bounds (if any appear later) stay satisfiable.
macro_rules! mark {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {}
          impl Deserialize for $t {})*
    };
}

mark!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);
mark!(f32, f64, bool, char, String);

impl<T> Serialize for Vec<T> {}
impl<T> Deserialize for Vec<T> {}
impl<T> Serialize for Option<T> {}
impl<T> Deserialize for Option<T> {}
impl<T, U> Serialize for (T, U) {}
impl<T, U> Deserialize for (T, U) {}
impl<T, U, V> Serialize for (T, U, V) {}
impl<T, U, V> Deserialize for (T, U, V) {}
impl<T, const N: usize> Serialize for [T; N] {}
impl<T, const N: usize> Deserialize for [T; N] {}
impl Serialize for &str {}
