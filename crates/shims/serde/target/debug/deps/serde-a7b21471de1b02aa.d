/root/repo/crates/shims/serde/target/debug/deps/serde-a7b21471de1b02aa.d: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/serde-a7b21471de1b02aa: src/lib.rs

src/lib.rs:
