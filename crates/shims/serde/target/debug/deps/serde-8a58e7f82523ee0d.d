/root/repo/crates/shims/serde/target/debug/deps/serde-8a58e7f82523ee0d.d: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/libserde-8a58e7f82523ee0d.rlib: src/lib.rs

/root/repo/crates/shims/serde/target/debug/deps/libserde-8a58e7f82523ee0d.rmeta: src/lib.rs

src/lib.rs:
