//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this repository uses:
//! range strategies over integers and floats, tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], `bool::ANY`, unweighted
//! [`prop_oneof!`], [`any`] over primitives, and the
//! [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case reports its inputs via the
//!   assertion message instead of minimizing them.
//! - **Deterministic seeding.** Each property derives its ChaCha8 seed
//!   from the property function's name, so failures reproduce exactly
//!   across runs and machines.
//! - **256 cases per property** (the upstream default), overridable via
//!   the `PROPTEST_CASES` environment variable.

use rand::Rng;
pub use rand::SeedableRng;
pub use rand_chacha::ChaCha8Rng;

/// Error type carried by `prop_assert*` failures.
pub type TestCaseError = String;

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut ChaCha8Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
);

/// Collection strategies.
pub mod collection {
    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length comes from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The strategy built by [`prop_oneof!`]: draws uniformly from a set of
/// boxed alternatives that share one value type.
pub struct Union<T> {
    options: Vec<Box<dyn Fn(&mut ChaCha8Rng) -> T>>,
}

impl<T> Union<T> {
    /// Wraps the boxed alternatives. Used by [`prop_oneof!`]; call sites
    /// rarely construct this directly.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Fn(&mut ChaCha8Rng) -> T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        (self.options[pick])(rng)
    }
}

/// Picks one of several strategies uniformly per generated case.
/// Mirrors upstream's unweighted form; all alternatives must yield the
/// same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $({
                let s = $strategy;
                Box::new(move |rng: &mut $crate::ChaCha8Rng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::ChaCha8Rng) -> _>
            }),+
        ])
    }};
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

impl<T: rand::distributions::Standard> Strategy for AnyPrimitive<T> {
    type Value = T;

    fn generate(&self, rng: &mut ChaCha8Rng) -> T {
        rng.gen()
    }
}

/// Full-range strategy over a primitive, mirroring upstream's
/// `any::<T>()` for the types the vendored rand shim can draw
/// uniformly (`u32`, `u64`, `bool`, unit-interval floats).
#[must_use]
pub fn any<T: rand::distributions::Standard>() -> AnyPrimitive<T> {
    AnyPrimitive(core::marker::PhantomData)
}

/// Boolean strategies.
pub mod bool {
    use super::{ChaCha8Rng, Strategy};
    use rand::Rng;

    /// A fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut ChaCha8Rng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Number of cases per property: `PROPTEST_CASES` env var or 256.
#[must_use]
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Derives a per-property RNG seed from the property name (FNV-1a).
#[must_use]
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The things a test body needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection as prop_collection, prop_assert, prop_assert_eq, prop_assert_ne,
        prop_oneof, proptest, Just, Strategy, TestCaseError,
    };

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return Err(format!($($fmt)*));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares property tests.
///
/// Mirrors the upstream macro's common form:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn my_property(x in 0.0..1.0f64, (a, b) in (0..10usize, 0..10usize)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let mut rng = <$crate::ChaCha8Rng as $crate::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for case in 0..$crate::cases() {
                    let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = ($strategy).generate(&mut rng);)+
                        $body
                        Ok(())
                    })();
                    if let Err(message) = result {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            $crate::cases(),
                            message,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples((a, b) in (0.0..5.0f64, 1u64..9), v in prop::collection::vec(0..3usize, 1..10)) {
            prop_assert!((0.0..5.0).contains(&a));
            prop_assert!((1..9).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn map_and_bool(x in (0..10usize).prop_map(|i| i * 2), flip in prop::bool::ANY) {
            prop_assert!(x % 2 == 0 && x < 20);
            prop_assert_eq!(flip || !flip, true);
        }

        #[test]
        fn oneof_and_any(x in prop_oneof![0..10u64, 100..110u64], y in any::<u64>()) {
            prop_assert!(x < 10 || (100..110u64).contains(&x));
            let _ = y; // full-range draw; nothing further to assert
        }
    }

    #[test]
    fn failures_report_message() {
        let result = std::panic::catch_unwind(|| {
            crate::proptest! {
                #[allow(unused)]
                fn always_fails(x in 0..10usize) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "message: {msg}");
    }
}
