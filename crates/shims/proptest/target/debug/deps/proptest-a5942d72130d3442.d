/root/repo/crates/shims/proptest/target/debug/deps/proptest-a5942d72130d3442.d: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-a5942d72130d3442.rlib: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/libproptest-a5942d72130d3442.rmeta: src/lib.rs

src/lib.rs:
