/root/repo/crates/shims/proptest/target/debug/deps/rand_chacha-70af2544e457186a.d: /root/repo/crates/shims/rand_chacha/src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/librand_chacha-70af2544e457186a.rlib: /root/repo/crates/shims/rand_chacha/src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/librand_chacha-70af2544e457186a.rmeta: /root/repo/crates/shims/rand_chacha/src/lib.rs

/root/repo/crates/shims/rand_chacha/src/lib.rs:
