/root/repo/crates/shims/proptest/target/debug/deps/proptest-9bd9254b16233059.d: src/lib.rs

/root/repo/crates/shims/proptest/target/debug/deps/proptest-9bd9254b16233059: src/lib.rs

src/lib.rs:
