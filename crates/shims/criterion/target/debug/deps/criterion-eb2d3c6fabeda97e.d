/root/repo/crates/shims/criterion/target/debug/deps/criterion-eb2d3c6fabeda97e.d: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/libcriterion-eb2d3c6fabeda97e.rlib: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/libcriterion-eb2d3c6fabeda97e.rmeta: src/lib.rs

src/lib.rs:
