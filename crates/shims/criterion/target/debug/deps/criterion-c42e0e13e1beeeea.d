/root/repo/crates/shims/criterion/target/debug/deps/criterion-c42e0e13e1beeeea.d: src/lib.rs

/root/repo/crates/shims/criterion/target/debug/deps/criterion-c42e0e13e1beeeea: src/lib.rs

src/lib.rs:
