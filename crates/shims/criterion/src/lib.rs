//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the criterion API this repository's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros — over a simple wall-clock sampler.
//!
//! Method: each benchmark warms up for ~100 ms, picks an
//! iterations-per-sample count targeting ~20 ms per sample, collects
//! `sample_size` samples, and reports min/median/mean. No statistical
//! regression analysis, no HTML reports; results print to stdout as
//! `name                time: [min median mean]`.
//!
//! A single positional CLI filter (as passed by `cargo bench -- <filter>`)
//! restricts which benchmarks run, substring-matched like upstream.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Measured throughput annotation (printed alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, decimal multiple variant (upstream parity).
    BytesDecimal(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter (the group provides the name).
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Passed to the closure given to `iter`; runs and times the payload.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Times `routine`, running it repeatedly and recording samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count giving
        // roughly 20 ms per sample (at least 1).
        let calibration_start = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration_start.elapsed() < Duration::from_millis(100) {
            black_box(routine());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calibration_start.elapsed() / calibration_iters.max(1) as u32;
        self.iters_per_sample =
            (Duration::from_millis(20).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000)
                as u64;

        self.samples.clear();
        for _ in 0..self.sample_target {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / self.iters_per_sample as u32);
        }
    }
}

fn human(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(
    name: &str,
    filter: Option<&str>,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    if let Some(needle) = filter {
        if !name.contains(needle) {
            return;
        }
    }
    let mut bencher =
        Bencher { iters_per_sample: 1, samples: Vec::new(), sample_target: sample_size };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        return;
    }
    let mut sorted = bencher.samples.clone();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let mut line = format!(
        "{name:<48} time: [{} {} {}]  ({} samples x {} iters)",
        human(min),
        human(median),
        human(mean),
        sorted.len(),
        bencher.iters_per_sample,
    );
    if let Some(tp) = throughput {
        let per_sec = |count: u64| count as f64 / median.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  thrpt: {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                line.push_str(&format!("  thrpt: {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` forwards everything after `--`;
        // ignore flag-like arguments (e.g. --bench) like upstream.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter, sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default sample count for subsequent benchmarks.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Configuration hook kept for API parity (ignored).
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(name, self.filter.as_deref(), self.sample_size, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            filter: self.filter.clone(),
            sample_size: self.sample_size,
            throughput: None,
            _marker: core::marker::PhantomData,
        }
    }

    /// Final-config hook kept for API parity.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    filter: Option<String>,
    sample_size: usize,
    throughput: Option<Throughput>,
    _marker: core::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Configuration hook kept for API parity (ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.filter.as_deref(),
            self.sample_size,
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Times one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.filter.as_deref(),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = Criterion { filter: None, sample_size: 3 };
        c.bench_function("fib_10", |b| b.iter(|| black_box(fib(black_box(10)))));
    }

    #[test]
    fn groups_and_inputs_run() {
        let mut c = Criterion { filter: None, sample_size: 3 };
        let mut group = c.benchmark_group("fib");
        group.sample_size(2).throughput(Throughput::Elements(1));
        for n in [5u64, 8] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(fib(n)));
            });
        }
        group.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("zzz_never".into()), sample_size: 2 };
        let mut ran = false;
        c.bench_function("fib_10", |b| {
            ran = true;
            b.iter(|| black_box(fib(5)));
        });
        assert!(!ran, "filtered benchmark must not execute");
    }
}
