//! Deterministic parallel execution for the `magseven` workspace.
//!
//! The paper's Challenge 5 ("Chips and Salsa", §2.5) argues that
//! batched, parallel *software* execution is itself a first-class
//! accelerator. This crate is the workspace's software accelerator: a
//! small scoped thread pool with work-stealing-style dynamic chunk
//! claiming, exposing data-parallel maps whose **results are
//! bit-identical regardless of thread count or scheduling order**.
//!
//! # Determinism contract
//!
//! [`par_map`] and [`par_map_indexed`] evaluate a pure function over
//! each input and write each output into the slot owned by its input
//! index. Scheduling decides only *who* computes a slot, never *what*
//! is computed or *where* it lands, so for any thread count:
//!
//! ```text
//! par_map(items, f) == items.iter().map(f).collect()
//! ```
//!
//! Functions that fold results (experiment replicates, DSE population
//! scoring) must combine outputs *after* the parallel map, in index
//! order, to preserve floating-point associativity — every call site in
//! this workspace does.
//!
//! # Thread-count control
//!
//! The pool size is chosen per call:
//!
//! 1. an explicit [`ParConfig`] wins,
//! 2. else the `M7_THREADS` environment variable (clamped to
//!    `1..=256`),
//! 3. else [`std::thread::available_parallelism`].
//!
//! `M7_THREADS=1` (or one available core) short-circuits to a plain
//! serial loop on the calling thread — no pool, no atomics.
//!
//! # Examples
//!
//! ```
//! // Deterministic parallel map: order of results always matches input.
//! let squares = m7_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Identical output at any thread count.
//! use m7_par::ParConfig;
//! let serial = ParConfig::serial().par_map(&[1.0f64, 2.0, 3.0], |x| x.sqrt());
//! let wide = ParConfig::with_threads(8).par_map(&[1.0f64, 2.0, 3.0], |x| x.sqrt());
//! assert_eq!(serial, wide);
//! ```

#![warn(missing_docs)]

use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceHistogram};
use std::sync::atomic::{AtomicUsize, Ordering};

// Observability (no-ops until `m7_trace::enable()`): batch/item totals
// are pure functions of the work submitted, so they are classed
// deterministic and recorded identically on the serial and pooled
// paths. Everything scheduling-dependent — who claimed, who stole, how
// deep the remaining queue was — lives under the `sched.` prefix as
// diagnostic-class metrics.
static BATCH_SPAN: SpanSite = SpanSite::new("par.batch", MetricClass::Deterministic);
static WORKER_SPAN: SpanSite = SpanSite::new("sched.par.worker", MetricClass::Diagnostic);
static BATCHES: TraceCounter = TraceCounter::new("par.batches", MetricClass::Deterministic);
static ITEMS: TraceCounter = TraceCounter::new("par.items", MetricClass::Deterministic);
static JOINS: TraceCounter = TraceCounter::new("par.joins", MetricClass::Deterministic);
static JOIN_TASKS: TraceCounter = TraceCounter::new("par.join_tasks", MetricClass::Deterministic);
static CLAIMS: TraceCounter = TraceCounter::new("sched.par.claims", MetricClass::Diagnostic);
static STEALS: TraceCounter = TraceCounter::new("sched.par.steals", MetricClass::Diagnostic);
static QUEUE_DEPTH: TraceHistogram =
    TraceHistogram::new("sched.par.queue_depth", MetricClass::Diagnostic);
static WORKER_ITEMS: TraceHistogram =
    TraceHistogram::new("sched.par.worker_items", MetricClass::Diagnostic);

/// Hard ceiling on the pool size; protects against pathological
/// `M7_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// Upper bound on how many items a worker claims per visit to the
/// shared cursor; amortizes counter traffic on large fine-grained
/// batches. Small batches drop to one-item claims (see [`claim_chunk`])
/// so a handful of coarse tasks — e.g. ten whole experiments — still
/// spread across all workers.
const MAX_CLAIM_CHUNK: usize = 4;

/// Chunk size for a batch: one item per claim until the batch is large
/// enough that every worker gets several chunks, then up to
/// [`MAX_CLAIM_CHUNK`]. Purely a scheduling knob — results never depend
/// on it.
fn claim_chunk(len: usize, workers: usize) -> usize {
    (len / (workers * 8).max(1)).clamp(1, MAX_CLAIM_CHUNK)
}

/// Environment variable overriding the pool width.
pub const THREADS_ENV: &str = "M7_THREADS";

/// Resolved parallelism configuration for a batch of calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
}

impl Default for ParConfig {
    /// Reads `M7_THREADS`, falling back to the host's available
    /// parallelism.
    fn default() -> Self {
        Self { threads: default_threads() }
    }
}

impl ParConfig {
    /// A pool of exactly `threads` workers (clamped to `1..=`[`MAX_THREADS`]).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.clamp(1, MAX_THREADS) }
    }

    /// The serial configuration: everything runs on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` in parallel; results are in input order and
    /// bit-identical to the serial map for any thread count.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Maps `f` over `0..len` in parallel; results are in index order
    /// and bit-identical to the serial map for any thread count.
    ///
    /// This is the primitive the rest of the crate builds on: workers
    /// dynamically claim small index chunks from a shared atomic cursor
    /// (the scheduling is self-balancing like a work-stealing deque,
    /// without per-worker queues to rebalance) and write each result
    /// into the uniquely owned slot for its index.
    pub fn par_map_indexed<U, F>(&self, len: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        let workers = self.threads.min(len).max(1);
        let _span = BATCH_SPAN.enter();
        BATCHES.incr();
        ITEMS.add(len as u64);
        if workers == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        let chunk = claim_chunk(len, workers);

        let mut results: Vec<Option<U>> = Vec::with_capacity(len);
        results.resize_with(len, || None);
        let slots = SlotWriter::new(&mut results);
        let cursor = AtomicUsize::new(0);

        let (cursor_ref, f_ref, slots_ref) = (&cursor, &f, &slots);
        std::thread::scope(|scope| {
            // The calling thread is worker 0; spawn the remaining ones.
            for worker in 1..workers {
                scope.spawn(move || worker_loop(cursor_ref, len, chunk, worker, f_ref, slots_ref));
            }
            worker_loop(cursor_ref, len, chunk, 0, f_ref, slots_ref);
        });

        results.into_iter().map(|slot| slot.expect("every index claimed exactly once")).collect()
    }

    /// Runs independent closures concurrently, returning their outputs
    /// in argument order.
    ///
    /// The closures run at most once each; ordering of *execution* is
    /// unspecified, ordering of *results* is fixed.
    pub fn join_all<U, F>(&self, tasks: Vec<F>) -> Vec<U>
    where
        U: Send,
        F: FnOnce() -> U + Send,
    {
        JOINS.incr();
        JOIN_TASKS.add(tasks.len() as u64);
        if self.threads == 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let mut slots: Vec<(Option<F>, Option<U>)> =
            tasks.into_iter().map(|task| (Some(task), None)).collect();
        std::thread::scope(|scope| {
            let mut remaining: &mut [(Option<F>, Option<U>)] = &mut slots;
            let mut spawned = Vec::new();
            while let Some((slot, rest)) = remaining.split_first_mut() {
                remaining = rest;
                spawned.push(scope.spawn(move || {
                    let task = slot.0.take().expect("task present");
                    slot.1 = Some(task());
                }));
                if spawned.len() >= self.threads {
                    // Keep at most `threads` tasks in flight.
                    spawned.remove(0).join().expect("worker panicked");
                }
            }
        });
        slots.into_iter().map(|(_, out)| out.expect("task ran")).collect()
    }
}

/// Dynamic-chunk worker: claim `chunk` indices at a time until the
/// range is exhausted.
fn worker_loop<U, F>(
    cursor: &AtomicUsize,
    len: usize,
    chunk: usize,
    worker: usize,
    f: &F,
    slots: &SlotWriter<'_, U>,
) where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    // Hoisted so the disabled path stays one load + branch per claim.
    let tracing = m7_trace::enabled();
    let _span = if tracing { Some(WORKER_SPAN.enter()) } else { None };
    let mut processed = 0u64;
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= len {
            break;
        }
        if tracing {
            CLAIMS.incr();
            if worker != 0 {
                // A spawned worker pulling work the caller would
                // otherwise run — the pool's analogue of a steal.
                STEALS.incr();
            }
            QUEUE_DEPTH.record((len - start) as u64);
        }
        let end = (start + chunk).min(len);
        processed += (end - start) as u64;
        for i in start..end {
            // SAFETY (upheld here): `i` comes from a unique fetch_add
            // claim, so no other worker touches slot `i`.
            unsafe { slots.write(i, f(i)) };
        }
    }
    if tracing {
        WORKER_ITEMS.record(processed);
    }
}

/// Shared mutable access to the result buffer with index-disjoint
/// writes.
///
/// Each index is claimed exactly once through the atomic cursor, so
/// writes never alias; the scope guarantees workers end before the
/// buffer is read.
struct SlotWriter<'a, U> {
    base: *mut Option<U>,
    len: usize,
    _lifetime: std::marker::PhantomData<&'a mut [Option<U>]>,
}

// SAFETY: the raw pointer is only dereferenced at indices uniquely
// claimed via the atomic cursor (see `worker_loop`), so concurrent use
// from multiple threads never aliases.
unsafe impl<U: Send> Sync for SlotWriter<'_, U> {}

impl<'a, U> SlotWriter<'a, U> {
    fn new(buffer: &'a mut Vec<Option<U>>) -> Self {
        Self { base: buffer.as_mut_ptr(), len: buffer.len(), _lifetime: std::marker::PhantomData }
    }

    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// Callers must guarantee `i < len` and that no other thread writes
    /// slot `i` (both hold for indices claimed from the shared cursor).
    unsafe fn write(&self, i: usize, value: U) {
        debug_assert!(i < self.len);
        unsafe { *self.base.add(i) = Some(value) };
    }
}

/// Resolves the default worker count: `M7_THREADS` env override, else
/// available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
        eprintln!("warning: ignoring invalid {THREADS_ENV}={raw:?} (want 1..={MAX_THREADS})");
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// [`ParConfig::par_map`] with the default configuration
/// (`M7_THREADS` / available parallelism).
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    ParConfig::default().par_map(items, f)
}

/// [`ParConfig::par_map_indexed`] with the default configuration.
pub fn par_map_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    ParConfig::default().par_map_indexed(len, f)
}

/// Derives a statistically independent child seed from a root seed and
/// a task index (SplitMix64 over the pair).
///
/// Parallel replicates and sharded sweeps use this so that each task's
/// randomness is a pure function of `(root, index)` — independent of
/// scheduling — keeping fan-out deterministic.
#[must_use]
pub fn derive_seed(root: u64, index: u64) -> u64 {
    let mut z = root ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = ParConfig::with_threads(threads).par_map(&items, |&x| x * x + 1);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_thread_counts() {
        let items: Vec<f64> = (0..5000).map(|i| f64::from(i) * 0.37).collect();
        let f = |x: &f64| (x.sin() * x.cos()).mul_add(3.7, x.sqrt());
        let serial = ParConfig::serial().par_map(&items, f);
        for threads in [2, 4, 16] {
            let par = ParConfig::with_threads(threads).par_map(&items, f);
            let identical = serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "bitwise divergence at {threads} threads");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn indexed_map_covers_every_index_once() {
        let n = 10_000;
        let got = ParConfig::with_threads(8).par_map_indexed(n, |i| i);
        assert_eq!(got, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Last items are 100x more expensive; dynamic claiming must not
        // serialize on a single unlucky worker (correctness check only —
        // timing is asserted in the bench suite).
        let items: Vec<usize> = (0..64).collect();
        let got = ParConfig::with_threads(4).par_map(&items, |&i| {
            let reps = if i > 56 { 200_000 } else { 2_000 };
            (0..reps).map(|k| f64::from(k as u32).sqrt()).sum::<f64>().floor() as usize + i
        });
        let want: Vec<usize> = items
            .iter()
            .map(|&i| {
                let reps = if i > 56 { 200_000 } else { 2_000 };
                (0..reps).map(|k| f64::from(k as u32).sqrt()).sum::<f64>().floor() as usize + i
            })
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn join_all_preserves_order() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..20usize)
            .map(|i| Box::new(move || i * 3) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let got = ParConfig::with_threads(4).join_all(tasks);
        assert_eq!(got, (0..20).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        let seeds: std::collections::HashSet<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        assert_eq!(seeds.len(), 100, "children must not collide");
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn with_threads_clamps() {
        assert_eq!(ParConfig::with_threads(0).threads(), 1);
        assert_eq!(ParConfig::with_threads(100_000).threads(), MAX_THREADS);
    }

    #[test]
    fn panics_propagate_without_deadlock() {
        let result = std::panic::catch_unwind(|| {
            ParConfig::with_threads(4).par_map_indexed(100, |i| {
                assert!(i != 57, "injected failure");
                i
            })
        });
        assert!(result.is_err(), "worker panic must surface to the caller");
    }
}
