//! Campaign plans: the stratification of scenario space and the
//! deterministic seed schedule that samples it.
//!
//! A [`CampaignPlan`] fixes *what* a campaign measures — which
//! generator families, how many difficulty strata, which platform
//! tier, and how much evaluation budget — before any scenario exists.
//! Every random draw in the campaign is then derived from
//! `(root seed, stratum index, draw index)` through the same SplitMix64
//! scheme `m7-par` uses for its workers, so the sample a stratum sees
//! is a pure function of the plan and the root seed: independent of
//! thread count, of chunking, and of how many prior invocations
//! resumed the campaign.

use m7_par::derive_seed;
use m7_scen::Family;
use m7_serve::key::KeyHasher;
use m7_sim::uav::ComputeTier;

/// Salt folded into the root seed before stratum derivation, so
/// campaign streams never collide with `m7-par` worker seeds or other
/// subsystems deriving from the same root.
const STRATUM_SALT: u64 = 0x6D37_6361_6D70_0001; // "m7" "camp"

/// What a campaign measures: families × difficulty strata × tier,
/// and how much budget it may spend finding out.
///
/// # Examples
///
/// ```
/// use m7_camp::CampaignPlan;
/// use m7_sim::uav::ComputeTier;
///
/// let plan = CampaignPlan::new(ComputeTier::Micro, 600);
/// assert_eq!(plan.strata(), 6 * 10); // six families × ten deciles
/// // The sample schedule is pure in (plan, root, stratum, draw).
/// assert_eq!(plan.draw(7, 3, 0), plan.draw(7, 3, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Generator families covered, one stratum row per family.
    pub families: Vec<Family>,
    /// Difficulty strata per family, partitioning level space `[0, 1)`.
    pub deciles: usize,
    /// Platform tier every scenario is evaluated against.
    pub tier: ComputeTier,
    /// Total closed-loop evaluation budget across all rounds.
    pub budget: usize,
    /// Adaptive rounds: round 0 is a uniform pilot, later rounds
    /// reallocate toward the falsification frontier.
    pub rounds: usize,
    /// Evaluations per work unit — the checkpoint granularity.
    pub chunk: usize,
    /// Budget for the frontier-anchoring `falsify` probe.
    pub falsify_budget: usize,
}

impl CampaignPlan {
    /// A plan over every generator family with ten difficulty deciles,
    /// three adaptive rounds, and 32-evaluation checkpoint units.
    #[must_use]
    pub fn new(tier: ComputeTier, budget: usize) -> Self {
        Self {
            families: Family::ALL.to_vec(),
            deciles: 10,
            tier,
            budget,
            rounds: 3,
            chunk: 32,
            falsify_budget: 36,
        }
    }

    /// Number of strata (families × deciles).
    #[must_use]
    pub fn strata(&self) -> usize {
        self.families.len() * self.deciles
    }

    /// The family a stratum index belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `stratum >= self.strata()`.
    #[must_use]
    pub fn family(&self, stratum: usize) -> Family {
        assert!(stratum < self.strata(), "stratum {stratum} out of range");
        self.families[stratum / self.deciles]
    }

    /// The difficulty decile (0-based) of a stratum index.
    #[must_use]
    pub fn decile(&self, stratum: usize) -> usize {
        stratum % self.deciles
    }

    /// The half-open difficulty-level range `[lo, hi)` a decile covers.
    #[must_use]
    pub fn level_range(&self, decile: usize) -> (f64, f64) {
        let d = self.deciles as f64;
        (decile as f64 / d, (decile + 1) as f64 / d)
    }

    /// Content fingerprint of the plan. Folded into every checkpoint
    /// key, so a resumed campaign only reuses work units produced by an
    /// identical plan.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = KeyHasher::new();
        h.write_str("m7-camp-plan");
        h.write_u64(self.families.len() as u64);
        for f in &self.families {
            h.write_str(f.name());
        }
        h.write_u64(self.deciles as u64);
        h.write_str(&self.tier.to_string());
        h.write_u64(self.budget as u64);
        h.write_u64(self.rounds as u64);
        h.write_u64(self.chunk as u64);
        h.write_u64(self.falsify_budget as u64);
        h.finish().0
    }

    /// Deterministic per-stratum stream seed for a campaign root seed.
    #[must_use]
    pub fn stratum_seed(&self, root: u64, stratum: usize) -> u64 {
        derive_seed(root ^ STRATUM_SALT, stratum as u64)
    }

    /// The `draw`-th sample of a stratum: a `(level, world seed)` pair.
    /// The level is uniform over the stratum's decile range; the world
    /// seed feeds `m7_scen::generate`. Pure in
    /// `(plan, root, stratum, draw)`.
    ///
    /// # Panics
    ///
    /// Panics if `stratum >= self.strata()`.
    #[must_use]
    pub fn draw(&self, root: u64, stratum: usize, draw: usize) -> (f64, u64) {
        let (lo, hi) = self.level_range(self.decile(stratum));
        let seed = derive_seed(self.stratum_seed(root, stratum), draw as u64);
        // Top 53 bits → uniform in [0, 1): the exact double ladder.
        let unit = (seed >> 11) as f64 / (1u64 << 53) as f64;
        (lo + unit * (hi - lo), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strata_index_maps_cover_all_cells() {
        let plan = CampaignPlan::new(ComputeTier::Micro, 100);
        let mut seen = std::collections::HashSet::new();
        for s in 0..plan.strata() {
            seen.insert((plan.family(s).name(), plan.decile(s)));
            let (lo, hi) = plan.level_range(plan.decile(s));
            assert!(lo < hi && (0.0..=1.0).contains(&lo) && hi <= 1.0);
        }
        assert_eq!(seen.len(), plan.strata());
    }

    #[test]
    fn draws_land_inside_their_decile() {
        let plan = CampaignPlan::new(ComputeTier::Embedded, 100);
        for stratum in 0..plan.strata() {
            let (lo, hi) = plan.level_range(plan.decile(stratum));
            for draw in 0..20 {
                let (level, _) = plan.draw(42, stratum, draw);
                assert!(level >= lo && level < hi, "level {level} outside [{lo}, {hi})");
            }
        }
    }

    #[test]
    fn fingerprint_distinguishes_plans() {
        let a = CampaignPlan::new(ComputeTier::Micro, 100);
        let mut b = a.clone();
        b.budget = 101;
        let mut c = a.clone();
        c.tier = ComputeTier::Desktop;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), CampaignPlan::new(ComputeTier::Micro, 100).fingerprint());
    }
}
