//! The streaming campaign engine: generate → evaluate → discard.
//!
//! [`run_campaign`] walks a [`CampaignPlan`] in adaptive rounds. Each
//! round apportions its budget slice across strata, splits every
//! stratum's allocation into fixed-size *work units*, evaluates the
//! units through the deterministic `m7-par` pool, and folds each
//! unit's [`StratumSketch`] into the per-stratum state. No scenario
//! outlives its evaluation — memory stays O(strata) no matter how
//! large the budget is.
//!
//! Work units are the checkpoint granularity. Every unit is memoized
//! in a caller-supplied [`ResultStore`] under a key derived from
//! `(campaign namespace, plan fingerprint, stratum, draw range)`, so a
//! campaign pointed at a disk-backed `TieredCache` resumes after a
//! kill by replaying finished units from the store instead of
//! re-simulating them — the sketches are bit-identical either way.
//!
//! Round 0 is a uniform pilot. Later rounds practice *importance
//! splitting*: each stratum's weight is its remaining Wilson
//! uncertainty times a Gaussian of its distance to the falsification
//! frontier anchor found by `m7_scen::falsify`, so budget drains away
//! from strata whose outcome is already settled and concentrates where
//! the platform tier flips between success and failure.

use m7_par::ParConfig;
use m7_scen::{evaluate_uav, falsify_memo, generate, FalsifyConfig, Family, FrontierPoint};
use m7_serve::key::{namespace, KeyHasher};
use m7_serve::tier::ResultStore;
use m7_serve::CacheKey;
use m7_sim::uav::ComputeTier;
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceGauge, TraceHistogram};

use crate::plan::CampaignPlan;
use crate::stats::{coverage_score, StratumSketch};

static CAMPAIGN: SpanSite = SpanSite::new("camp.campaign", MetricClass::Deterministic);
static EVALUATIONS: TraceCounter =
    TraceCounter::new("camp.evaluations", MetricClass::Deterministic);
static UNITS: TraceCounter = TraceCounter::new("camp.units", MetricClass::Deterministic);
static STRATUM_BUDGET: TraceHistogram =
    TraceHistogram::new("camp.stratum_budget", MetricClass::Deterministic);
static UNIT_REPLAYS: TraceCounter = TraceCounter::new("camp.unit_replays", MetricClass::Diagnostic);
// Per-round progress, refreshed inside the round loop so a telemetry
// hub sampling mid-campaign sees the trajectory, not just the end
// state. Final values are pure functions of (plan, seed), so they stay
// in the deterministic class.
static ROUNDS_DONE: TraceGauge = TraceGauge::new("camp.rounds_done", MetricClass::Deterministic);
static COVERAGE_PPM: TraceGauge = TraceGauge::new("camp.coverage_ppm", MetricClass::Deterministic);

/// How sharply importance splitting concentrates around the frontier
/// anchor (standard deviation of the Gaussian kernel, in difficulty
/// units).
const FRONTIER_BANDWIDTH: f64 = 0.25;

/// Final state of one stratum after a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StratumReport {
    /// Generator family of this stratum.
    pub family: Family,
    /// Difficulty decile (0-based) within the family.
    pub decile: usize,
    /// Total draws allocated to the stratum across all rounds.
    pub draws: usize,
    /// The merged evaluation sketch.
    pub sketch: StratumSketch,
    /// 95% Wilson interval on the stratum's success probability.
    pub wilson: (f64, f64),
}

/// Budget trail of one adaptive round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// Round index (0 = uniform pilot).
    pub round: usize,
    /// Closed-loop evaluations this round accounted for.
    pub evaluations: usize,
    /// Strata that received a non-zero allocation.
    pub active_strata: usize,
}

/// Everything a finished campaign knows, in O(strata) space.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// The tier the campaign evaluated.
    pub tier: ComputeTier,
    /// Difficulty anchor importance splitting steered toward: the
    /// falsification frontier, or the hardest probed difficulty if the
    /// tier survived the probe.
    pub anchor: f64,
    /// The frontier point the anchoring probe found, if any.
    pub frontier: Option<FrontierPoint>,
    /// Per-stratum results, indexed as `family-major × decile`.
    pub strata: Vec<StratumReport>,
    /// Per-round budget trail.
    pub rounds: Vec<RoundReport>,
    /// Scalar coverage score in `[0, 1]` (see
    /// [`coverage_score`](crate::stats::coverage_score)).
    pub coverage: f64,
    /// Closed-loop evaluations the campaign accounts for, including
    /// units replayed from the checkpoint store.
    pub evaluations: u64,
    /// Work units the campaign was split into.
    pub units: usize,
    /// Units satisfied from the checkpoint store instead of being
    /// re-simulated. Diagnostic: varies between cold and resumed runs
    /// while every other field is bit-identical.
    pub units_from_store: usize,
}

/// Runs a streaming campaign: anchor on the falsification frontier,
/// then stream `plan.budget` scenario evaluations through adaptive
/// stratified rounds, checkpointing every work unit in `units`.
///
/// Deterministic in `(plan, seed)` and invariant to the thread count
/// of `par`; all fields except the diagnostic `units_from_store` are
/// bit-identical across cold, warm, and resumed runs. Pass a
/// disk-backed [`TieredCache`](m7_serve::TieredCache) as `units` to
/// make the campaign survive a kill; pass
/// [`EvalCache`](m7_serve::EvalCache) for a memory-only run.
///
/// # Panics
///
/// Panics if the plan has no strata, zero rounds, or a zero chunk
/// size.
///
/// # Examples
///
/// ```
/// use m7_camp::{run_campaign, CampaignPlan};
/// use m7_par::ParConfig;
/// use m7_serve::EvalCache;
/// use m7_sim::uav::ComputeTier;
///
/// let plan = CampaignPlan::new(ComputeTier::Micro, 60);
/// let units = EvalCache::new(256);
/// let falsify = EvalCache::new(256);
/// let cold = run_campaign(&plan, 7, ParConfig::serial(), &units, &falsify);
/// assert_eq!(cold.evaluations, 60);
///
/// // A second run replays every unit from the store: same result,
/// // zero re-simulation.
/// let warm = run_campaign(&plan, 7, ParConfig::serial(), &units, &falsify);
/// assert_eq!(warm.units_from_store, warm.units);
/// assert_eq!(warm.strata, cold.strata);
/// ```
#[must_use]
pub fn run_campaign<S, F>(
    plan: &CampaignPlan,
    seed: u64,
    par: ParConfig,
    units: &S,
    falsify_cache: &F,
) -> CampaignOutcome
where
    S: ResultStore<StratumSketch>,
    F: ResultStore<f64>,
{
    assert!(plan.strata() > 0, "campaign plan must have at least one stratum");
    assert!(plan.rounds > 0, "campaign plan must have at least one round");
    assert!(plan.chunk > 0, "campaign chunk size must be positive");
    let _span = CAMPAIGN.enter();

    // Anchor: where does this tier start failing? The probe is
    // memoized in `falsify_cache`, so resumed campaigns skip it too.
    let probe = FalsifyConfig {
        families: plan.families.clone(),
        levels: 8,
        variants: 2,
        budget: plan.falsify_budget,
    };
    let fals = falsify_memo(plan.tier, &probe, seed, par, falsify_cache);
    let anchor = fals.frontier.as_ref().map_or(fals.max_difficulty, |f| f.difficulty);

    let n = plan.strata();
    let fingerprint = plan.fingerprint();
    let ns = namespace("m7-camp", seed);
    let mut sketches = vec![StratumSketch::default(); n];
    let mut draws_done = vec![0usize; n];
    let mut rounds = Vec::with_capacity(plan.rounds);
    let mut total_units = 0usize;
    let mut replayed_units = 0usize;

    for round in 0..plan.rounds {
        let round_budget =
            plan.budget / plan.rounds + usize::from(round < plan.budget % plan.rounds);
        let weights = if round == 0 {
            vec![1.0; n]
        } else {
            sketches.iter().map(|s| importance_weight(s, anchor)).collect()
        };
        let alloc = apportion(round_budget, &weights);

        // One work unit per `chunk` draws of a stratum, continuing at
        // that stratum's draw counter — the unit's identity (and its
        // checkpoint key) is independent of rounds and thread counts.
        let mut work: Vec<(usize, usize, usize)> = Vec::new();
        for (stratum, &count) in alloc.iter().enumerate() {
            STRATUM_BUDGET.record(count as u64);
            let mut start = draws_done[stratum];
            let end = start + count;
            while start < end {
                let len = plan.chunk.min(end - start);
                work.push((stratum, start, len));
                start += len;
            }
        }

        let results = par.par_map(&work, |&(stratum, start, len)| {
            let key = unit_key(ns, fingerprint, stratum, start, len);
            let (sketch, replayed) =
                units.get_or_insert_with(key, || evaluate_unit(plan, seed, stratum, start, len));
            (stratum, sketch, replayed)
        });

        let mut evaluations = 0usize;
        for ((stratum, _, len), (_, sketch, replayed)) in work.iter().zip(&results) {
            sketches[*stratum].merge(sketch);
            draws_done[*stratum] += len;
            evaluations += len;
            replayed_units += usize::from(*replayed);
        }
        total_units += work.len();
        UNITS.add(work.len() as u64);
        EVALUATIONS.add(evaluations as u64);
        ROUNDS_DONE.set(round as u64 + 1);
        COVERAGE_PPM.set((coverage_score(&sketches) * 1e6).round() as u64);
        rounds.push(RoundReport {
            round,
            evaluations,
            active_strata: alloc.iter().filter(|&&a| a > 0).count(),
        });
    }

    UNIT_REPLAYS.add(replayed_units as u64);
    let strata = (0..n)
        .map(|s| StratumReport {
            family: plan.family(s),
            decile: plan.decile(s),
            draws: draws_done[s],
            sketch: sketches[s],
            wilson: sketches[s].wilson(),
        })
        .collect();
    CampaignOutcome {
        tier: plan.tier,
        anchor,
        frontier: fals.frontier,
        coverage: coverage_score(&sketches),
        evaluations: draws_done.iter().map(|&d| d as u64).sum(),
        units: total_units,
        units_from_store: replayed_units,
        strata,
        rounds,
    }
}

/// Importance-splitting weight of a stratum: remaining Wilson
/// uncertainty, concentrated near the frontier anchor. Untouched
/// strata keep full weight so nothing is starved before its pilot.
fn importance_weight(sketch: &StratumSketch, anchor: f64) -> f64 {
    if sketch.trials == 0 {
        return 1.0;
    }
    let (lo, hi) = sketch.wilson();
    let z = (sketch.mean_difficulty() - anchor) / FRONTIER_BANDWIDTH;
    ((hi - lo) * (-z * z).exp()).max(1e-12)
}

/// Largest-remainder apportionment of `total` across `weights`,
/// deterministic including ties (broken toward the lower index).
fn apportion(total: usize, weights: &[f64]) -> Vec<usize> {
    let sum: f64 = weights.iter().sum();
    if total == 0 || weights.is_empty() || sum <= 0.0 {
        return vec![0; weights.len()];
    }
    let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
    let mut alloc: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = alloc.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a] - quotas[a].floor(), quotas[b] - quotas[b].floor());
        fb.partial_cmp(&fa).unwrap_or(core::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    for i in 0..total.saturating_sub(assigned) {
        alloc[order[i % order.len()]] += 1;
    }
    alloc
}

/// Checkpoint key of one work unit. Folding in the plan fingerprint
/// means a store can safely hold several campaigns at once.
fn unit_key(ns: u64, fingerprint: u64, stratum: usize, start: usize, len: usize) -> CacheKey {
    let mut h = KeyHasher::new();
    h.write_str("m7-camp-unit");
    h.write_u64(ns);
    h.write_u64(fingerprint);
    h.write_u64(stratum as u64);
    h.write_u64(start as u64);
    h.write_u64(len as u64);
    h.finish()
}

/// Evaluates one work unit: `len` draws of a stratum, generated,
/// simulated, folded into a sketch, and discarded.
fn evaluate_unit(
    plan: &CampaignPlan,
    seed: u64,
    stratum: usize,
    start: usize,
    len: usize,
) -> StratumSketch {
    let family = plan.family(stratum);
    let mut sketch = StratumSketch::default();
    for draw in start..start + len {
        let (level, world_seed) = plan.draw(seed, stratum, draw);
        let s = generate(family, level, world_seed);
        let out = evaluate_uav(&s, plan.tier, s.seed);
        sketch.record(&out, s.difficulty());
    }
    sketch
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_serve::EvalCache;

    fn tiny_plan(budget: usize) -> CampaignPlan {
        CampaignPlan {
            families: vec![Family::Corridor, Family::Rooms],
            deciles: 4,
            tier: ComputeTier::Micro,
            budget,
            rounds: 2,
            chunk: 8,
            falsify_budget: 12,
        }
    }

    #[test]
    fn budget_is_spent_exactly_and_rounds_sum() {
        let plan = tiny_plan(50);
        let units = EvalCache::new(128);
        let fals = EvalCache::new(128);
        let out = run_campaign(&plan, 3, ParConfig::serial(), &units, &fals);
        assert_eq!(out.evaluations, 50);
        assert_eq!(out.rounds.iter().map(|r| r.evaluations).sum::<usize>(), 50);
        assert_eq!(out.strata.iter().map(|s| s.sketch.trials).sum::<u64>(), 50);
        assert!(out.coverage > 0.0 && out.coverage <= 1.0);
    }

    #[test]
    fn resume_replays_units_without_reevaluation() {
        let plan = tiny_plan(40);
        let units = EvalCache::new(128);
        let fals = EvalCache::new(128);
        let cold = run_campaign(&plan, 9, ParConfig::serial(), &units, &fals);
        assert_eq!(cold.units_from_store, 0);
        let warm = run_campaign(&plan, 9, ParConfig::serial(), &units, &fals);
        assert_eq!(warm.units_from_store, warm.units);
        assert_eq!(warm.strata, cold.strata);
        assert_eq!(warm.rounds, cold.rounds);
        assert_eq!(warm.coverage, cold.coverage);
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let plan = tiny_plan(40);
        let a = {
            let (u, f) = (EvalCache::new(128), EvalCache::new(128));
            run_campaign(&plan, 5, ParConfig::serial(), &u, &f)
        };
        let b = {
            let (u, f) = (EvalCache::new(128), EvalCache::new(128));
            run_campaign(&plan, 5, ParConfig::with_threads(8), &u, &f)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn later_rounds_skew_budget_toward_uncertain_strata() {
        // A settled stratum (many trials, tight interval, far from the
        // anchor) must weigh less than a fresh one near the anchor.
        let settled = StratumSketch {
            trials: 200,
            successes: 200,
            difficulty_ppm: 50_000 * 200, // mean difficulty 0.05
            ..StratumSketch::default()
        };
        let contested = StratumSketch {
            trials: 10,
            successes: 5,
            difficulty_ppm: 500_000 * 10, // mean difficulty 0.5
            ..StratumSketch::default()
        };
        let anchor = 0.5;
        assert!(importance_weight(&contested, anchor) > importance_weight(&settled, anchor));
    }

    #[test]
    fn apportion_conserves_total_and_follows_weights() {
        let alloc = apportion(10, &[1.0, 1.0, 2.0]);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert!(alloc[2] > alloc[0]);
        assert_eq!(apportion(0, &[1.0, 1.0]), vec![0, 0]);
        assert_eq!(apportion(5, &[]), Vec::<usize>::new());
        // Exact ties break toward the lower index.
        assert_eq!(apportion(3, &[1.0, 1.0]), vec![2, 1]);
    }
}
