//! Streaming mega-campaigns: million-scenario coverage in O(strata)
//! memory.
//!
//! E12's falsification search finds *one* frontier point per tier.
//! The scenario-diversity challenge asks a harder question: across
//! the whole operating envelope — every generator family, every
//! difficulty band — *how often* does a platform tier succeed, and
//! how sure are we? Answering that takes orders of magnitude more
//! closed-loop evaluations than any in-memory grid can hold, so this
//! crate streams them: scenarios are generated, evaluated, and
//! discarded, and only fixed-size statistics survive.
//!
//! - [`plan`] — [`CampaignPlan`]: families × difficulty strata ×
//!   tier × budget, plus the deterministic per-stratum seed schedule
//!   (the `m7-par` SplitMix64 scheme, so campaigns are invariant to
//!   thread count and to how many invocations they are resumed
//!   across).
//! - [`stats`] — [`StratumSketch`]: mergeable integer sketches per
//!   stratum, Wilson confidence intervals on success curves, and a
//!   scalar coverage score.
//! - [`engine`] — [`run_campaign`]: adaptive rounds that pilot
//!   uniformly, then importance-split the remaining budget toward
//!   strata straddling the falsification frontier found by
//!   `m7_scen::falsify`; every fixed-size work unit checkpoints
//!   through an `m7_serve::ResultStore`, so a campaign pointed at a
//!   disk-backed tiered cache survives a kill and resumes with zero
//!   re-evaluation.
//!
//! Experiment E14 reports campaigns for the micro and embedded tiers;
//! `examples/campaign.rs` drives arbitrary budgets from the command
//! line.
//!
//! # Examples
//!
//! ```
//! use m7_camp::{run_campaign, CampaignPlan};
//! use m7_par::ParConfig;
//! use m7_serve::EvalCache;
//! use m7_sim::uav::ComputeTier;
//!
//! let plan = CampaignPlan::new(ComputeTier::Micro, 60);
//! let units = EvalCache::new(256);
//! let falsify = EvalCache::new(256);
//! let out = run_campaign(&plan, 42, ParConfig::default(), &units, &falsify);
//! assert_eq!(out.evaluations, 60);
//! assert_eq!(out.strata.len(), plan.strata());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod plan;
pub mod stats;

pub use engine::{run_campaign, CampaignOutcome, RoundReport, StratumReport};
pub use plan::CampaignPlan;
pub use stats::{coverage_score, wilson_interval, wilson_width, StratumSketch};
