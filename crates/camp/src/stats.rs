//! Streaming coverage statistics: mergeable per-stratum sketches and
//! Wilson score intervals.
//!
//! A campaign never materializes its scenarios, so everything the
//! final report needs must fit in O(strata) state. Each stratum keeps
//! one [`StratumSketch`] — six saturating integer accumulators. The
//! choice of integers is load-bearing: saturating addition of
//! non-negative integers is exactly associative and commutative, so
//! per-worker partial sketches merge to bit-identical totals in any
//! order, at any thread count. Floating-point accumulation would not
//! give that guarantee.

use m7_scen::ScenOutcome;
use m7_serve::DiskCodec;

/// z for a 95% Wilson score interval.
const WILSON_Z: f64 = 1.96;

/// Encoded size of a [`StratumSketch`] on disk: six little-endian
/// `u64` words.
pub const SKETCH_BYTES: usize = 48;

/// Mergeable success/failure sketch for one campaign stratum.
///
/// Fractional observations are fixed-point scaled on entry
/// (microseconds for mission time, parts-per-million for difficulty)
/// so every field is an integer and merging stays exact.
///
/// # Examples
///
/// ```
/// use m7_camp::stats::StratumSketch;
///
/// let mut a = StratumSketch::default();
/// let mut b = StratumSketch::default();
/// a.trials = 3;
/// a.successes = 2;
/// b.trials = 5;
/// b.successes = 1;
/// let mut ab = a;
/// ab.merge(&b);
/// let mut ba = b;
/// ba.merge(&a);
/// assert_eq!(ab, ba); // merge order never matters
/// assert_eq!(ab.trials, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StratumSketch {
    /// Scenarios evaluated.
    pub trials: u64,
    /// Missions that finished before their deadline.
    pub successes: u64,
    /// Courses covered, but after the deadline.
    pub deadline_misses: u64,
    /// Missions that never covered the course (battery / planner).
    pub incompletes: u64,
    /// Total mission time, microseconds.
    pub time_us: u64,
    /// Total scenario difficulty, parts-per-million.
    pub difficulty_ppm: u64,
}

impl StratumSketch {
    /// Folds one evaluation outcome into the sketch.
    pub fn record(&mut self, out: &ScenOutcome, difficulty: f64) {
        self.trials = self.trials.saturating_add(1);
        if out.success {
            self.successes = self.successes.saturating_add(1);
        }
        if out.deadline_miss {
            self.deadline_misses = self.deadline_misses.saturating_add(1);
        }
        if !out.completed {
            self.incompletes = self.incompletes.saturating_add(1);
        }
        self.time_us = self.time_us.saturating_add((out.time_s.max(0.0) * 1e6).round() as u64);
        self.difficulty_ppm =
            self.difficulty_ppm.saturating_add((difficulty.clamp(0.0, 1.0) * 1e6).round() as u64);
    }

    /// Componentwise saturating merge — exactly associative and
    /// commutative, so worker partials combine in any order.
    pub fn merge(&mut self, other: &Self) {
        self.trials = self.trials.saturating_add(other.trials);
        self.successes = self.successes.saturating_add(other.successes);
        self.deadline_misses = self.deadline_misses.saturating_add(other.deadline_misses);
        self.incompletes = self.incompletes.saturating_add(other.incompletes);
        self.time_us = self.time_us.saturating_add(other.time_us);
        self.difficulty_ppm = self.difficulty_ppm.saturating_add(other.difficulty_ppm);
    }

    /// Observed success rate, or 0 when the stratum is untouched.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Mean scenario difficulty seen by this stratum (0 when empty).
    #[must_use]
    pub fn mean_difficulty(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.difficulty_ppm as f64 / self.trials as f64 / 1e6
        }
    }

    /// 95% Wilson interval on the stratum's success probability.
    #[must_use]
    pub fn wilson(&self) -> (f64, f64) {
        wilson_interval(self.successes, self.trials)
    }
}

impl DiskCodec for StratumSketch {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.trials,
            self.successes,
            self.deadline_misses,
            self.incompletes,
            self.time_us,
            self.difficulty_ppm,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != SKETCH_BYTES {
            return None;
        }
        let word = |i: usize| {
            let mut b = [0u8; 8];
            b.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            u64::from_le_bytes(b)
        };
        Some(Self {
            trials: word(0),
            successes: word(1),
            deadline_misses: word(2),
            incompletes: word(3),
            time_us: word(4),
            difficulty_ppm: word(5),
        })
    }
}

/// 95% Wilson score interval for `successes` out of `trials`.
///
/// The Wilson interval stays inside `[0, 1]` and behaves sanely at the
/// extremes where the naive normal interval collapses; an empty
/// stratum returns the vacuous `(0, 1)`.
///
/// # Examples
///
/// ```
/// use m7_camp::stats::wilson_interval;
///
/// assert_eq!(wilson_interval(0, 0), (0.0, 1.0));
/// let (lo, hi) = wilson_interval(9, 10);
/// assert!(lo > 0.5 && hi < 1.0);
/// let (lo2, hi2) = wilson_interval(90, 100);
/// assert!(hi2 - lo2 < hi - lo); // more trials, tighter interval
/// ```
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = (successes.min(trials)) as f64 / n;
    let z2 = WILSON_Z * WILSON_Z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = WILSON_Z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    ((center - half).clamp(0.0, 1.0), (center + half).clamp(0.0, 1.0))
}

/// Width of the 95% Wilson interval — the per-stratum uncertainty the
/// coverage score and the importance-splitting weights both consume.
#[must_use]
pub fn wilson_width(successes: u64, trials: u64) -> f64 {
    let (lo, hi) = wilson_interval(successes, trials);
    hi - lo
}

/// Scalar coverage score over a set of stratum sketches: the mean of
/// `1 − wilson_width` across strata. 0 means nothing has been probed;
/// approaching 1 means every stratum's success probability is pinned
/// down tightly.
#[must_use]
pub fn coverage_score(sketches: &[StratumSketch]) -> f64 {
    if sketches.is_empty() {
        return 0.0;
    }
    let sum: f64 = sketches.iter().map(|s| 1.0 - wilson_width(s.successes, s.trials)).sum();
    sum / sketches.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_bounds_stay_in_unit_interval() {
        for (s, n) in [(0, 0), (0, 1), (1, 1), (5, 10), (999, 1000)] {
            let (lo, hi) = wilson_interval(s, n);
            assert!((0.0..=1.0).contains(&lo), "lo out of range for {s}/{n}");
            assert!((0.0..=1.0).contains(&hi), "hi out of range for {s}/{n}");
            assert!(lo <= hi, "inverted interval for {s}/{n}");
        }
    }

    #[test]
    fn wilson_narrows_with_sample_size() {
        let mut prev = wilson_width(1, 2);
        for k in [2u64, 8, 32, 128] {
            let w = wilson_width(k, 2 * k);
            assert!(w < prev, "width must shrink at n={}", 2 * k);
            prev = w;
        }
    }

    #[test]
    fn sketch_roundtrips_through_disk_codec() {
        let s = StratumSketch {
            trials: 7,
            successes: 4,
            deadline_misses: 2,
            incompletes: 1,
            time_us: 123_456_789,
            difficulty_ppm: 3_500_000,
        };
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        assert_eq!(bytes.len(), SKETCH_BYTES);
        assert_eq!(StratumSketch::decode(&bytes), Some(s));
        assert_eq!(StratumSketch::decode(&bytes[..40]), None);
    }

    #[test]
    fn coverage_rises_as_strata_fill_in() {
        let empty = StratumSketch::default();
        let probed = StratumSketch { trials: 50, successes: 25, ..StratumSketch::default() };
        let sparse = coverage_score(&[empty, empty]);
        let dense = coverage_score(&[probed, probed]);
        assert_eq!(sparse, 0.0);
        assert!(dense > 0.5);
    }
}
