//! Property tests for the campaign statistics and seed schedule:
//! Wilson interval sanity, monotone narrowing, merge-order invariance
//! of the per-worker sketches, and collision freedom of the stratified
//! seed derivation.

use m7_camp::{wilson_interval, wilson_width, CampaignPlan, StratumSketch};
use m7_scen::ScenOutcome;
use m7_serve::DiskCodec;
use m7_sim::uav::ComputeTier;
use proptest::prelude::*;

/// A synthetic outcome for sketch-recording properties.
fn outcome(success: bool, completed: bool, time_s: f64) -> ScenOutcome {
    ScenOutcome {
        success,
        completed,
        deadline_miss: completed && !success,
        time_s,
        deadline_s: 60.0,
        energy_j: 10.0,
        distance_m: 80.0,
    }
}

proptest! {
    /// Wilson bounds always stay inside [0, 1] and keep lo <= hi.
    #[test]
    fn wilson_bounds_are_within_unit_interval(
        trials in 0u64..100_000,
        frac in 0.0f64..=1.0,
    ) {
        let successes = (trials as f64 * frac).round() as u64;
        let (lo, hi) = wilson_interval(successes, trials);
        prop_assert!((0.0..=1.0).contains(&lo), "lo {lo} for {successes}/{trials}");
        prop_assert!((0.0..=1.0).contains(&hi), "hi {hi} for {successes}/{trials}");
        prop_assert!(lo <= hi, "inverted interval for {successes}/{trials}");
    }

    /// At a fixed success rate, more trials never widen the interval.
    #[test]
    fn wilson_width_narrows_monotonically_with_n(
        base in 1u64..500,
        frac in 0.0f64..=1.0,
    ) {
        let mut prev = f64::INFINITY;
        for scale in [1u64, 2, 4, 8, 16] {
            let n = base * scale;
            let s = (n as f64 * frac).round() as u64;
            let w = wilson_width(s.min(n), n);
            prop_assert!(
                w <= prev + 1e-12,
                "width grew from {prev} to {w} at n={n}"
            );
            prev = w;
        }
    }

    /// Per-worker sketches merge to bit-identical totals in any order:
    /// merging left-to-right equals merging right-to-left equals any
    /// pairing, because the accumulators are saturating integers.
    #[test]
    fn sketch_merge_is_order_invariant(
        spec in proptest::collection::vec((prop::bool::ANY, prop::bool::ANY, 0.0f64..1e4), 1..20),
    ) {
        let sketches: Vec<StratumSketch> = spec
            .iter()
            .map(|&(success, completed, time_s)| {
                let mut s = StratumSketch::default();
                s.record(&outcome(success && completed, completed, time_s), 0.5);
                s
            })
            .collect();
        let mut forward = StratumSketch::default();
        for s in &sketches {
            forward.merge(s);
        }
        let mut backward = StratumSketch::default();
        for s in sketches.iter().rev() {
            backward.merge(s);
        }
        // Pairwise tree merge, as a wide worker pool would produce.
        let mut tree = sketches.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut m = pair[0];
                if let Some(b) = pair.get(1) {
                    m.merge(b);
                }
                next.push(m);
            }
            tree = next;
        }
        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward, tree[0]);
    }

    /// The sketch disk codec round-trips exactly.
    #[test]
    fn sketch_codec_round_trips(
        trials in 0u64..1 << 40,
        successes in 0u64..1 << 40,
        time_us in 0u64..1 << 50,
    ) {
        let s = StratumSketch {
            trials,
            successes,
            deadline_misses: trials / 3,
            incompletes: trials / 7,
            time_us,
            difficulty_ppm: successes / 2,
        };
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        prop_assert_eq!(StratumSketch::decode(&bytes), Some(s));
    }

    /// The stratified seed schedule never hands the same world seed to
    /// two different (stratum, draw) cells — the streams are disjoint.
    #[test]
    fn stratified_seed_derivation_is_collision_free(root in 0u64..u64::MAX) {
        let plan = CampaignPlan::new(ComputeTier::Micro, 1000);
        let mut seen = std::collections::HashSet::new();
        for stratum in 0..plan.strata() {
            for draw in 0..40 {
                let (_, seed) = plan.draw(root, stratum, draw);
                prop_assert!(
                    seen.insert(seed),
                    "seed collision at stratum {stratum} draw {draw}"
                );
            }
        }
    }

    /// Draw levels always land inside the stratum's decile.
    #[test]
    fn draw_levels_respect_their_stratum(
        root in 0u64..u64::MAX,
        stratum in 0usize..60,
        draw in 0usize..1000,
    ) {
        let plan = CampaignPlan::new(ComputeTier::Embedded, 1000);
        let (lo, hi) = plan.level_range(plan.decile(stratum));
        let (level, _) = plan.draw(root, stratum, draw);
        prop_assert!(level >= lo && level < hi, "level {level} outside [{lo}, {hi})");
    }
}
