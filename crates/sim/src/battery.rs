//! Battery and vehicle power models.
//!
//! The hover-power model is the physical coupling behind experiment E5:
//! every gram of compute hardware raises the power needed just to stay
//! airborne, so over-provisioned compute shortens missions even before it
//! draws its first computational watt.

use m7_units::{Grams, Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// An energy store with draw tracking.
///
/// # Examples
///
/// ```
/// use m7_sim::battery::Battery;
/// use m7_units::{Joules, Seconds, Watts};
///
/// let mut b = Battery::new(Joules::from_watt_hours(50.0));
/// b.draw(Watts::new(100.0), Seconds::new(60.0));
/// assert!(b.remaining() < b.capacity());
/// assert!(!b.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: Joules,
    used: Joules,
}

impl Battery {
    /// Creates a full battery of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is non-positive or non-finite.
    #[must_use]
    pub fn new(capacity: Joules) -> Self {
        assert!(capacity.value() > 0.0 && capacity.is_finite(), "capacity must be positive");
        Self { capacity, used: Joules::ZERO }
    }

    /// Total capacity.
    #[must_use]
    pub fn capacity(&self) -> Joules {
        self.capacity
    }

    /// Energy drawn so far.
    #[must_use]
    pub fn used(&self) -> Joules {
        self.used
    }

    /// Energy remaining (never negative).
    #[must_use]
    pub fn remaining(&self) -> Joules {
        (self.capacity - self.used).max(Joules::ZERO)
    }

    /// State of charge in `[0, 1]`.
    #[must_use]
    pub fn state_of_charge(&self) -> f64 {
        (self.remaining() / self.capacity).clamp(0.0, 1.0)
    }

    /// Returns `true` once the battery is exhausted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.used >= self.capacity
    }

    /// Draws `power` for `dt`. Returns `true` if the battery still has
    /// charge afterwards.
    pub fn draw(&mut self, power: Watts, dt: Seconds) -> bool {
        self.used += power * dt;
        !self.is_empty()
    }
}

/// Multirotor hover power from momentum theory:
/// `P = (m g)^{3/2} / sqrt(2 ρ A) / η`.
///
/// # Examples
///
/// ```
/// use m7_sim::battery::hover_power;
/// use m7_units::Grams;
///
/// let light = hover_power(Grams::new(1000.0), 0.2);
/// let heavy = hover_power(Grams::new(2000.0), 0.2);
/// // Doubling mass costs ~2.83× the hover power.
/// assert!(heavy.value() / light.value() > 2.7);
/// assert!(heavy.value() / light.value() < 3.0);
/// ```
#[must_use]
pub fn hover_power(total_mass: Grams, rotor_disk_area_m2: f64) -> Watts {
    const G: f64 = 9.81;
    const AIR_DENSITY: f64 = 1.225;
    /// Electromechanical efficiency of the propulsion chain.
    const EFFICIENCY: f64 = 0.6;
    let kg = total_mass.to_kilograms().value();
    let thrust = kg * G;
    let ideal = thrust.powf(1.5) / (2.0 * AIR_DENSITY * rotor_disk_area_m2).sqrt();
    Watts::new(ideal / EFFICIENCY)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_depletes() {
        let mut b = Battery::new(Joules::new(100.0));
        assert!(b.draw(Watts::new(10.0), Seconds::new(5.0)));
        assert_eq!(b.remaining(), Joules::new(50.0));
        assert!((b.state_of_charge() - 0.5).abs() < 1e-12);
        assert!(!b.draw(Watts::new(10.0), Seconds::new(5.0)));
        assert!(b.is_empty());
        assert_eq!(b.remaining(), Joules::ZERO);
    }

    #[test]
    fn overdraw_clamps_remaining() {
        let mut b = Battery::new(Joules::new(10.0));
        b.draw(Watts::new(100.0), Seconds::new(1.0));
        assert_eq!(b.remaining(), Joules::ZERO);
        assert_eq!(b.state_of_charge(), 0.0);
        assert_eq!(b.used(), Joules::new(100.0));
    }

    #[test]
    fn discharge_is_monotone() {
        // Remaining charge never recovers and used energy never shrinks,
        // no matter the draw pattern.
        let mut b = Battery::new(Joules::new(500.0));
        let powers = [5.0, 0.0, 80.0, 1.0, 40.0, 0.0, 120.0];
        let mut last_remaining = b.remaining();
        let mut last_used = b.used();
        let mut last_soc = b.state_of_charge();
        for (i, &p) in powers.iter().cycle().take(70).enumerate() {
            b.draw(Watts::new(p), Seconds::new(0.5 + (i % 3) as f64));
            assert!(b.remaining() <= last_remaining, "remaining must not recover");
            assert!(b.used() >= last_used, "used must not shrink");
            assert!(b.state_of_charge() <= last_soc, "SoC must not recover");
            last_remaining = b.remaining();
            last_used = b.used();
            last_soc = b.state_of_charge();
        }
        assert!(b.is_empty(), "70 draws at these powers exhaust 500 J");
        assert_eq!(b.remaining(), Joules::ZERO);
    }

    #[test]
    fn zero_power_draw_changes_nothing() {
        let mut b = Battery::new(Joules::new(100.0));
        assert!(b.draw(Watts::new(0.0), Seconds::new(1e6)));
        assert_eq!(b.remaining(), b.capacity());
        assert_eq!(b.state_of_charge(), 1.0);
    }

    #[test]
    fn hover_power_increases_superlinearly() {
        let p1 = hover_power(Grams::new(1500.0), 0.25);
        let p2 = hover_power(Grams::new(3000.0), 0.25);
        assert!(p2.value() > 2.0 * p1.value(), "power grows faster than mass");
    }

    #[test]
    fn hover_power_is_plausible() {
        // A 1.5 kg quad with 0.25 m² disk area hovers around 100-200 W.
        let p = hover_power(Grams::new(1500.0), 0.25);
        assert!(p.value() > 50.0 && p.value() < 300.0, "got {p}");
    }

    #[test]
    fn bigger_rotors_hover_cheaper() {
        let small = hover_power(Grams::new(2000.0), 0.1);
        let large = hover_power(Grams::new(2000.0), 0.5);
        assert!(large < small);
    }
}
