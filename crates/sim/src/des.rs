//! A small deterministic discrete-event simulation engine.
//!
//! The engine itself lives in `m7-flow` ([`m7_flow::vtime`]) — it became
//! the shared virtual clock under both the dataflow runtime and this
//! crate's legacy pipeline when the two were unified. This module
//! re-exports it so existing `m7_sim::des::EventQueue` users keep
//! compiling unchanged.

pub use m7_flow::vtime::EventQueue;
