//! Sensor models: frame rates, payload sizes, and measurement noise.

use m7_units::{Bytes, BytesPerSecond, Hertz};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The sensor classes carried by the simulated vehicles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// A global-shutter camera.
    Camera,
    /// A scanning 2D lidar.
    Lidar,
    /// An inertial measurement unit.
    Imu,
}

impl core::fmt::Display for SensorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Camera => "camera",
            Self::Lidar => "lidar",
            Self::Imu => "imu",
        };
        f.write_str(s)
    }
}

/// A sensor's rate, payload, and noise specification.
///
/// # Examples
///
/// ```
/// use m7_sim::sensor::SensorSpec;
///
/// let cam = SensorSpec::camera_vga(30.0);
/// assert_eq!(cam.rate().value(), 30.0);
/// assert!(cam.data_rate().as_gigabytes_per_second() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    kind: SensorKind,
    rate: Hertz,
    payload: Bytes,
    /// Standard deviation of measurement noise (sensor-specific units).
    noise_std: f64,
}

impl SensorSpec {
    /// Creates a spec from raw parameters.
    ///
    /// # Panics
    ///
    /// Panics if the rate or payload is non-positive/non-finite, or the
    /// noise is negative.
    #[must_use]
    pub fn new(kind: SensorKind, rate: Hertz, payload: Bytes, noise_std: f64) -> Self {
        assert!(rate.value() > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(payload.value() > 0.0 && payload.is_finite(), "payload must be positive");
        assert!(noise_std >= 0.0, "noise must be non-negative");
        Self { kind, rate, payload, noise_std }
    }

    /// A VGA grayscale camera at the given frame rate.
    #[must_use]
    pub fn camera_vga(fps: f64) -> Self {
        Self::new(SensorKind::Camera, Hertz::new(fps), Bytes::new(640.0 * 480.0), 2.0)
    }

    /// A 2D lidar: `beams` ranges of 4 bytes per revolution.
    #[must_use]
    pub fn lidar(rev_per_sec: f64, beams: usize) -> Self {
        Self::new(SensorKind::Lidar, Hertz::new(rev_per_sec), Bytes::new(4.0 * beams as f64), 0.02)
    }

    /// A 6-axis IMU at the given sample rate.
    #[must_use]
    pub fn imu(hz: f64) -> Self {
        Self::new(SensorKind::Imu, Hertz::new(hz), Bytes::new(24.0), 0.05)
    }

    /// Sensor class.
    #[must_use]
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Frame/sample rate.
    #[must_use]
    pub fn rate(&self) -> Hertz {
        self.rate
    }

    /// Payload bytes per frame/sample.
    #[must_use]
    pub fn payload(&self) -> Bytes {
        self.payload
    }

    /// Measurement noise standard deviation.
    #[must_use]
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Average data rate produced by the sensor.
    #[must_use]
    pub fn data_rate(&self) -> BytesPerSecond {
        BytesPerSecond::new(self.rate.value() * self.payload.value())
    }
}

/// A deterministic Gaussian noise source (Box-Muller over a seeded
/// ChaCha RNG).
///
/// # Examples
///
/// ```
/// use m7_sim::sensor::NoiseSource;
///
/// let mut n = NoiseSource::new(1.0, 7);
/// let samples: Vec<f64> = (0..100).map(|_| n.sample()).collect();
/// let mean = samples.iter().sum::<f64>() / 100.0;
/// assert!(mean.abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseSource {
    std: f64,
    rng: rand_chacha::ChaCha8Rng,
    spare: Option<f64>,
}

impl NoiseSource {
    /// Creates a zero-mean Gaussian source with the given standard
    /// deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative or non-finite.
    #[must_use]
    pub fn new(std: f64, seed: u64) -> Self {
        assert!(std >= 0.0 && std.is_finite(), "std must be non-negative and finite");
        Self { std, rng: rand_chacha::ChaCha8Rng::seed_from_u64(seed), spare: None }
    }

    /// Draws one sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(s) = self.spare.take() {
            return s * self.std;
        }
        // Box-Muller transform.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z0 = mag * (2.0 * core::f64::consts::PI * u2).cos();
        let z1 = mag * (2.0 * core::f64::consts::PI * u2).sin();
        self.spare = Some(z1);
        z0 * self.std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camera_data_rate() {
        let cam = SensorSpec::camera_vga(30.0);
        let expected = 30.0 * 640.0 * 480.0;
        assert!((cam.data_rate().value() - expected).abs() < 1e-6);
        assert_eq!(cam.kind(), SensorKind::Camera);
    }

    #[test]
    fn lidar_and_imu_presets() {
        let l = SensorSpec::lidar(10.0, 360);
        assert_eq!(l.payload(), Bytes::new(1440.0));
        let i = SensorSpec::imu(200.0);
        assert_eq!(i.rate().value(), 200.0);
    }

    #[test]
    fn noise_statistics() {
        let mut n = NoiseSource::new(2.0, 3);
        let samples: Vec<f64> = (0..20_000).map(|_| n.sample()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn noise_is_deterministic() {
        let mut a = NoiseSource::new(1.0, 5);
        let mut b = NoiseSource::new(1.0, 5);
        for _ in 0..50 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn noise_stays_within_sigma_bounds() {
        // Box-Muller over a [eps, 1) uniform has a hard tail bound of
        // sqrt(-2 ln eps) ~ 8.5 sigma; practically every draw must land
        // well inside +/-6 sigma and the bulk inside +/-3 sigma.
        let std = 1.5;
        let mut n = NoiseSource::new(std, 11);
        let samples: Vec<f64> = (0..50_000).map(|_| n.sample()).collect();
        let mut inside_3 = 0usize;
        for &s in &samples {
            assert!(s.abs() <= 6.0 * std, "sample {s} breaches the 6-sigma bound");
            if s.abs() <= 3.0 * std {
                inside_3 += 1;
            }
        }
        let frac = inside_3 as f64 / samples.len() as f64;
        assert!(frac > 0.995, "only {frac} of samples inside 3 sigma");
    }

    #[test]
    fn noise_scales_linearly_with_std() {
        // Same seed, different std: identical shapes scaled by the ratio.
        let mut a = NoiseSource::new(1.0, 13);
        let mut b = NoiseSource::new(2.5, 13);
        for _ in 0..200 {
            let x = a.sample();
            let y = b.sample();
            assert!((y - 2.5 * x).abs() < 1e-12, "expected {x} scaled by 2.5, got {y}");
        }
    }

    #[test]
    fn zero_std_is_silent() {
        let mut n = NoiseSource::new(0.0, 1);
        for _ in 0..10 {
            assert_eq!(n.sample(), 0.0);
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(SensorKind::Lidar.to_string(), "lidar");
    }
}
