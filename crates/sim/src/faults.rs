//! Fault injection: sensor dropouts and compute brownouts scheduled
//! against mission time.
//!
//! Real deployments — the paper's "real-world effects like reliability and
//! robustness" (Challenge 6) — lose sensors to glare and dust and lose
//! compute to thermal or power events. The fault schedule lets every
//! closed-loop simulation in this crate be rerun under degradation, so
//! robustness becomes a measurable design output.

use m7_units::Seconds;
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The primary exteroceptive sensor produces nothing.
    SensorDropout {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
    },
    /// Compute runs degraded (thermal throttle, power cap).
    ComputeBrownout {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
        /// Latency multiplier while active (> 1).
        slowdown: f64,
    },
}

impl Fault {
    fn interval(&self) -> (Seconds, Seconds) {
        match *self {
            Fault::SensorDropout { start, duration }
            | Fault::ComputeBrownout { start, duration, .. } => (start, start + duration),
        }
    }

    /// Returns `true` if the fault is active at mission time `t`.
    #[must_use]
    pub fn active_at(&self, t: Seconds) -> bool {
        let (s, e) = self.interval();
        t >= s && t < e
    }
}

/// A time-ordered set of faults.
///
/// # Examples
///
/// ```
/// use m7_sim::faults::{Fault, FaultSchedule};
/// use m7_units::Seconds;
///
/// let schedule = FaultSchedule::new(vec![Fault::SensorDropout {
///     start: Seconds::new(10.0),
///     duration: Seconds::new(5.0),
/// }]);
/// assert!(!schedule.sensor_available(Seconds::new(12.0)));
/// assert!(schedule.sensor_available(Seconds::new(20.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if any brownout slowdown is not ≥ 1 or any duration is
    /// negative.
    #[must_use]
    pub fn new(faults: Vec<Fault>) -> Self {
        for f in &faults {
            let (s, e) = f.interval();
            assert!(e >= s, "fault duration must be non-negative");
            if let Fault::ComputeBrownout { slowdown, .. } = f {
                assert!(*slowdown >= 1.0, "brownout slowdown must be >= 1");
            }
        }
        Self { faults }
    }

    /// The empty schedule (nominal operation).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// The scheduled faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the exteroceptive sensor is producing at time `t`.
    #[must_use]
    pub fn sensor_available(&self, t: Seconds) -> bool {
        !self.faults.iter().any(|f| matches!(f, Fault::SensorDropout { .. }) && f.active_at(t))
    }

    /// The compute latency multiplier at time `t` (product of active
    /// brownouts; 1.0 nominal).
    #[must_use]
    pub fn compute_slowdown(&self, t: Seconds) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ComputeBrownout { slowdown, .. } if f.active_at(t) => Some(*slowdown),
                _ => None,
            })
            .product()
    }

    /// Total scheduled sensor-dropout seconds (for reporting).
    #[must_use]
    pub fn total_dropout(&self) -> Seconds {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SensorDropout { duration, .. } => Some(*duration),
                Fault::ComputeBrownout { .. } => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_nominal() {
        let s = FaultSchedule::none();
        assert!(s.sensor_available(Seconds::new(0.0)));
        assert_eq!(s.compute_slowdown(Seconds::new(100.0)), 1.0);
        assert_eq!(s.total_dropout(), Seconds::ZERO);
    }

    #[test]
    fn dropout_window_is_half_open() {
        let s = FaultSchedule::new(vec![Fault::SensorDropout {
            start: Seconds::new(10.0),
            duration: Seconds::new(5.0),
        }]);
        assert!(s.sensor_available(Seconds::new(9.99)));
        assert!(!s.sensor_available(Seconds::new(10.0)));
        assert!(!s.sensor_available(Seconds::new(14.99)));
        assert!(s.sensor_available(Seconds::new(15.0)));
        assert_eq!(s.total_dropout(), Seconds::new(5.0));
    }

    #[test]
    fn overlapping_brownouts_compound() {
        let s = FaultSchedule::new(vec![
            Fault::ComputeBrownout {
                start: Seconds::new(0.0),
                duration: Seconds::new(10.0),
                slowdown: 2.0,
            },
            Fault::ComputeBrownout {
                start: Seconds::new(5.0),
                duration: Seconds::new(10.0),
                slowdown: 3.0,
            },
        ]);
        assert_eq!(s.compute_slowdown(Seconds::new(2.0)), 2.0);
        assert_eq!(s.compute_slowdown(Seconds::new(7.0)), 6.0);
        assert_eq!(s.compute_slowdown(Seconds::new(12.0)), 3.0);
        assert_eq!(s.compute_slowdown(Seconds::new(20.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn rejects_speedup_brownout() {
        let _ = FaultSchedule::new(vec![Fault::ComputeBrownout {
            start: Seconds::ZERO,
            duration: Seconds::new(1.0),
            slowdown: 0.5,
        }]);
    }
}
