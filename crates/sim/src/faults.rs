//! Fault injection: sensor, compute, power, and transport faults
//! scheduled against mission time, plus a deterministic Monte-Carlo
//! schedule sampler for robustness campaigns.
//!
//! Real deployments — the paper's "real-world effects like reliability and
//! robustness" (Challenge 6) — lose sensors to glare and dust, lose
//! compute to thermal or power events, and lose messages between pipeline
//! stages. The fault schedule lets every closed-loop simulation in this
//! crate be rerun under degradation, so robustness becomes a measurable
//! design output. [`FaultProfile`] turns per-minute hazard rates into
//! seeded schedules for [`crate::campaign::CampaignRunner`].

use m7_units::Seconds;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// The primary exteroceptive sensor produces nothing.
    SensorDropout {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
    },
    /// The sensor keeps publishing the *last* frame — stale data that an
    /// unmonitored consumer cannot distinguish from fresh readings.
    SensorStuck {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
    },
    /// The sensor reads consistently off by a fixed margin (mis-calibration
    /// after a shock, thermal drift), eating into the usable sensing range.
    SensorBias {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
        /// Range error magnitude (meters of sensing range lost).
        bias_m: f64,
    },
    /// Compute runs degraded (thermal throttle, power cap).
    ComputeBrownout {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
        /// Latency multiplier while active (> 1).
        slowdown: f64,
    },
    /// A transient compute fault (bit flip, watchdog trip) that kills the
    /// autonomy stack at one instant; the vehicle must restart it before
    /// resuming. Recovery cost is decided by the consumer's
    /// [`crate::degrade::DegradationPolicy`].
    ComputeCrash {
        /// The instant the stack dies (mission time).
        at: Seconds,
    },
    /// Battery voltage sag (cold cells, aging pack): the pack delivers
    /// energy at reduced efficiency while active.
    BatterySag {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
        /// Delivery efficiency while active, in `(0, 1]`.
        efficiency: f64,
    },
    /// Inter-stage messages (sensor → compute → actuation) drop with the
    /// given probability while active — the transport fault consumed by
    /// [`crate::pipeline::Pipeline::simulate_with_faults`] and, as an
    /// effective-latency tax, by the closed-loop vehicles.
    MessageDrop {
        /// Fault onset (mission time).
        start: Seconds,
        /// Fault duration.
        duration: Seconds,
        /// Per-message drop probability while active, in `[0, 1)`.
        drop_rate: f64,
    },
}

impl Fault {
    /// The `[start, end)` window of the fault. Point events
    /// ([`Fault::ComputeCrash`]) have a zero-length window.
    #[must_use]
    pub fn interval(&self) -> (Seconds, Seconds) {
        match *self {
            Fault::SensorDropout { start, duration }
            | Fault::SensorStuck { start, duration }
            | Fault::SensorBias { start, duration, .. }
            | Fault::ComputeBrownout { start, duration, .. }
            | Fault::BatterySag { start, duration, .. }
            | Fault::MessageDrop { start, duration, .. } => (start, start + duration),
            Fault::ComputeCrash { at } => (at, at),
        }
    }

    /// Returns `true` if the fault is active at mission time `t`
    /// (half-open window; point events are never "active").
    #[must_use]
    pub fn active_at(&self, t: Seconds) -> bool {
        let (s, e) = self.interval();
        t >= s && t < e
    }

    /// Whether this fault degrades the perception path (dropout, stuck,
    /// bias) as opposed to compute, power, or transport.
    #[must_use]
    pub fn is_sensor_fault(&self) -> bool {
        matches!(
            self,
            Fault::SensorDropout { .. } | Fault::SensorStuck { .. } | Fault::SensorBias { .. }
        )
    }
}

/// Per-minute hazard rates and severity parameters for sampling random
/// fault schedules. All rates are Poisson arrivals; durations are
/// exponential with the given means.
///
/// # Examples
///
/// ```
/// use m7_sim::faults::{FaultProfile, FaultSchedule};
/// use m7_units::Seconds;
///
/// let schedule = FaultSchedule::sample(&FaultProfile::harsh(), Seconds::new(120.0), 7);
/// // Same seed, same schedule — campaigns are reproducible.
/// assert_eq!(schedule, FaultSchedule::sample(&FaultProfile::harsh(), Seconds::new(120.0), 7));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// Sensor dropouts per minute.
    pub dropout_per_min: f64,
    /// Mean dropout duration (s).
    pub dropout_mean_s: f64,
    /// Stuck-sensor events per minute.
    pub stuck_per_min: f64,
    /// Mean stuck duration (s).
    pub stuck_mean_s: f64,
    /// Sensor-bias episodes per minute.
    pub bias_per_min: f64,
    /// Mean bias duration (s).
    pub bias_mean_s: f64,
    /// Bias magnitude (meters of sensing range lost).
    pub bias_m: f64,
    /// Compute brownouts per minute.
    pub brownout_per_min: f64,
    /// Mean brownout duration (s).
    pub brownout_mean_s: f64,
    /// Brownout latency multiplier (> 1).
    pub brownout_slowdown: f64,
    /// Transient compute crashes per minute.
    pub crash_per_min: f64,
    /// Battery-sag episodes per minute.
    pub sag_per_min: f64,
    /// Mean sag duration (s).
    pub sag_mean_s: f64,
    /// Delivery efficiency during sag, in `(0, 1]`.
    pub sag_efficiency: f64,
    /// Message-drop windows per minute.
    pub msg_drop_per_min: f64,
    /// Mean drop-window duration (s).
    pub msg_drop_mean_s: f64,
    /// Per-message drop probability inside a window, `[0, 1)`.
    pub msg_drop_rate: f64,
}

impl FaultProfile {
    /// No faults at all — the nominal environment.
    #[must_use]
    pub fn none() -> Self {
        Self {
            dropout_per_min: 0.0,
            dropout_mean_s: 0.0,
            stuck_per_min: 0.0,
            stuck_mean_s: 0.0,
            bias_per_min: 0.0,
            bias_mean_s: 0.0,
            bias_m: 0.0,
            brownout_per_min: 0.0,
            brownout_mean_s: 0.0,
            brownout_slowdown: 1.0,
            crash_per_min: 0.0,
            sag_per_min: 0.0,
            sag_mean_s: 0.0,
            sag_efficiency: 1.0,
            msg_drop_per_min: 0.0,
            msg_drop_mean_s: 0.0,
            msg_drop_rate: 0.0,
        }
    }

    /// Occasional mild faults — a good day in the field.
    #[must_use]
    pub fn calm() -> Self {
        Self {
            dropout_per_min: 0.2,
            dropout_mean_s: 3.0,
            stuck_per_min: 0.1,
            stuck_mean_s: 2.0,
            bias_per_min: 0.1,
            bias_mean_s: 10.0,
            bias_m: 1.0,
            brownout_per_min: 0.2,
            brownout_mean_s: 5.0,
            brownout_slowdown: 1.5,
            crash_per_min: 0.05,
            sag_per_min: 0.1,
            sag_mean_s: 8.0,
            sag_efficiency: 0.8,
            msg_drop_per_min: 0.1,
            msg_drop_mean_s: 4.0,
            msg_drop_rate: 0.2,
        }
    }

    /// Frequent, severe faults — the robustness-campaign stressor used by
    /// experiment E11.
    #[must_use]
    pub fn harsh() -> Self {
        Self {
            dropout_per_min: 0.5,
            dropout_mean_s: 8.0,
            stuck_per_min: 0.5,
            stuck_mean_s: 6.0,
            bias_per_min: 0.3,
            bias_mean_s: 15.0,
            bias_m: 1.5,
            brownout_per_min: 0.4,
            brownout_mean_s: 10.0,
            brownout_slowdown: 3.0,
            crash_per_min: 0.3,
            sag_per_min: 0.3,
            sag_mean_s: 15.0,
            sag_efficiency: 0.55,
            msg_drop_per_min: 0.4,
            msg_drop_mean_s: 8.0,
            msg_drop_rate: 0.5,
        }
    }
}

/// A time-ordered set of faults.
///
/// # Examples
///
/// ```
/// use m7_sim::faults::{Fault, FaultSchedule};
/// use m7_units::Seconds;
///
/// let schedule = FaultSchedule::new(vec![Fault::SensorDropout {
///     start: Seconds::new(10.0),
///     duration: Seconds::new(5.0),
/// }]);
/// assert!(!schedule.sensor_available(Seconds::new(12.0)));
/// assert!(schedule.sensor_available(Seconds::new(20.0)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    faults: Vec<Fault>,
}

impl FaultSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if any duration is negative, any brownout slowdown is not
    /// ≥ 1, any bias is negative or non-finite, any sag efficiency is
    /// outside `(0, 1]`, or any drop rate is outside `[0, 1)`.
    #[must_use]
    pub fn new(faults: Vec<Fault>) -> Self {
        for f in &faults {
            let (s, e) = f.interval();
            assert!(e >= s, "fault duration must be non-negative");
            match *f {
                Fault::ComputeBrownout { slowdown, .. } => {
                    assert!(slowdown >= 1.0, "brownout slowdown must be >= 1");
                }
                Fault::SensorBias { bias_m, .. } => {
                    assert!(bias_m >= 0.0 && bias_m.is_finite(), "bias must be non-negative");
                }
                Fault::BatterySag { efficiency, .. } => {
                    assert!(
                        efficiency > 0.0 && efficiency <= 1.0,
                        "sag efficiency must be in (0, 1]"
                    );
                }
                Fault::MessageDrop { drop_rate, .. } => {
                    assert!((0.0..1.0).contains(&drop_rate), "message drop rate must be in [0, 1)");
                }
                _ => {}
            }
        }
        Self { faults }
    }

    /// The empty schedule (nominal operation).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Samples a random schedule from per-minute hazard rates over
    /// `[0, horizon)`, deterministic in `seed`.
    ///
    /// Arrivals are Poisson (exponential gaps), durations exponential
    /// with the profile's means. Faults are sorted by onset.
    #[must_use]
    pub fn sample(profile: &FaultProfile, horizon: Seconds, seed: u64) -> Self {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_5EED_0000_0000);
        let mut faults: Vec<Fault> = Vec::new();
        let h = horizon.value();

        // One arrival process per fault kind; each draws its gaps and
        // durations in a fixed order so the schedule is a pure function
        // of (profile, horizon, seed).
        let arrivals = |per_min: f64, rng: &mut rand_chacha::ChaCha8Rng| -> Vec<f64> {
            let mut starts = Vec::new();
            if per_min > 0.0 {
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -u.ln() * 60.0 / per_min;
                    if t >= h {
                        break;
                    }
                    starts.push(t);
                }
            }
            starts
        };
        let duration = |mean_s: f64, rng: &mut rand_chacha::ChaCha8Rng| -> f64 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-u.ln() * mean_s).max(0.2)
        };

        for t in arrivals(profile.dropout_per_min, &mut rng) {
            let d = duration(profile.dropout_mean_s, &mut rng);
            faults.push(Fault::SensorDropout { start: Seconds::new(t), duration: Seconds::new(d) });
        }
        for t in arrivals(profile.stuck_per_min, &mut rng) {
            let d = duration(profile.stuck_mean_s, &mut rng);
            faults.push(Fault::SensorStuck { start: Seconds::new(t), duration: Seconds::new(d) });
        }
        for t in arrivals(profile.bias_per_min, &mut rng) {
            let d = duration(profile.bias_mean_s, &mut rng);
            faults.push(Fault::SensorBias {
                start: Seconds::new(t),
                duration: Seconds::new(d),
                bias_m: profile.bias_m,
            });
        }
        for t in arrivals(profile.brownout_per_min, &mut rng) {
            let d = duration(profile.brownout_mean_s, &mut rng);
            faults.push(Fault::ComputeBrownout {
                start: Seconds::new(t),
                duration: Seconds::new(d),
                slowdown: profile.brownout_slowdown.max(1.0),
            });
        }
        for t in arrivals(profile.crash_per_min, &mut rng) {
            faults.push(Fault::ComputeCrash { at: Seconds::new(t) });
        }
        for t in arrivals(profile.sag_per_min, &mut rng) {
            let d = duration(profile.sag_mean_s, &mut rng);
            faults.push(Fault::BatterySag {
                start: Seconds::new(t),
                duration: Seconds::new(d),
                efficiency: profile.sag_efficiency.clamp(f64::EPSILON, 1.0),
            });
        }
        for t in arrivals(profile.msg_drop_per_min, &mut rng) {
            let d = duration(profile.msg_drop_mean_s, &mut rng);
            faults.push(Fault::MessageDrop {
                start: Seconds::new(t),
                duration: Seconds::new(d),
                drop_rate: profile.msg_drop_rate.clamp(0.0, 1.0 - f64::EPSILON),
            });
        }

        faults.sort_by(|a, b| {
            a.interval().0.value().partial_cmp(&b.interval().0.value()).expect("finite onsets")
        });
        Self::new(faults)
    }

    /// The scheduled faults.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether any fault is active at time `t` (point events count only
    /// through [`FaultSchedule::crashes_between`]).
    #[must_use]
    pub fn any_active(&self, t: Seconds) -> bool {
        self.faults.iter().any(|f| f.active_at(t))
    }

    /// Whether the exteroceptive sensor is producing at time `t`.
    #[must_use]
    pub fn sensor_available(&self, t: Seconds) -> bool {
        !self.faults.iter().any(|f| matches!(f, Fault::SensorDropout { .. }) && f.active_at(t))
    }

    /// The onset of the dropout outage covering `t`, if any (the earliest
    /// start among active dropouts — what a watchdog would know).
    #[must_use]
    pub fn dropout_since(&self, t: Seconds) -> Option<Seconds> {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::SensorDropout { .. }) && f.active_at(t))
            .map(|f| f.interval().0)
            .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite starts"))
    }

    /// The onset of the stuck-sensor episode covering `t`, if any.
    #[must_use]
    pub fn stuck_since(&self, t: Seconds) -> Option<Seconds> {
        self.faults
            .iter()
            .filter(|f| matches!(f, Fault::SensorStuck { .. }) && f.active_at(t))
            .map(|f| f.interval().0)
            .min_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite starts"))
    }

    /// Total sensing-range error at time `t` (sum of active biases,
    /// meters).
    #[must_use]
    pub fn sensor_bias(&self, t: Seconds) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SensorBias { bias_m, .. } if f.active_at(t) => Some(*bias_m),
                _ => None,
            })
            .sum()
    }

    /// The compute latency multiplier at time `t` (product of active
    /// brownouts; 1.0 nominal).
    #[must_use]
    pub fn compute_slowdown(&self, t: Seconds) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ComputeBrownout { slowdown, .. } if f.active_at(t) => Some(*slowdown),
                _ => None,
            })
            .product()
    }

    /// Number of compute crashes scheduled in `[t0, t1)`.
    #[must_use]
    pub fn crashes_between(&self, t0: Seconds, t1: Seconds) -> usize {
        self.faults
            .iter()
            .filter(|f| match f {
                Fault::ComputeCrash { at } => *at >= t0 && *at < t1,
                _ => false,
            })
            .count()
    }

    /// Battery delivery efficiency at time `t` (product of active sags;
    /// 1.0 nominal). Energy drawn from the pack is `power * dt /
    /// efficiency`.
    #[must_use]
    pub fn battery_efficiency(&self, t: Seconds) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::BatterySag { efficiency, .. } if f.active_at(t) => Some(*efficiency),
                _ => None,
            })
            .product()
    }

    /// Message drop probability at time `t`: active windows combine as
    /// independent losses, `1 - Π(1 - rᵢ)`.
    #[must_use]
    pub fn message_drop_rate(&self, t: Seconds) -> f64 {
        let pass: f64 = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::MessageDrop { drop_rate, .. } if f.active_at(t) => Some(1.0 - *drop_rate),
                _ => None,
            })
            .product();
        1.0 - pass
    }

    /// Total scheduled sensor-dropout seconds (for reporting).
    #[must_use]
    pub fn total_dropout(&self) -> Seconds {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::SensorDropout { duration, .. } => Some(*duration),
                _ => None,
            })
            .sum()
    }

    /// Union-merged `[start, end)` windows where perception is degraded
    /// (dropout or stuck), sorted by start. Overlapping and touching
    /// windows coalesce — the interval arithmetic the property tests pin.
    #[must_use]
    pub fn merged_sensor_outages(&self) -> Vec<(Seconds, Seconds)> {
        let mut windows: Vec<(f64, f64)> = self
            .faults
            .iter()
            .filter(|f| matches!(f, Fault::SensorDropout { .. } | Fault::SensorStuck { .. }))
            .map(|f| {
                let (s, e) = f.interval();
                (s.value(), e.value())
            })
            .filter(|(s, e)| e > s)
            .collect();
        windows.sort_by(|a, b| a.partial_cmp(b).expect("finite windows"));
        let mut merged: Vec<(f64, f64)> = Vec::new();
        for (s, e) in windows {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        merged.into_iter().map(|(s, e)| (Seconds::new(s), Seconds::new(e))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_is_nominal() {
        let s = FaultSchedule::none();
        assert!(s.sensor_available(Seconds::new(0.0)));
        assert_eq!(s.compute_slowdown(Seconds::new(100.0)), 1.0);
        assert_eq!(s.battery_efficiency(Seconds::new(100.0)), 1.0);
        assert_eq!(s.message_drop_rate(Seconds::new(100.0)), 0.0);
        assert_eq!(s.sensor_bias(Seconds::new(100.0)), 0.0);
        assert_eq!(s.total_dropout(), Seconds::ZERO);
        assert!(!s.any_active(Seconds::new(0.0)));
        assert!(s.merged_sensor_outages().is_empty());
    }

    #[test]
    fn dropout_window_is_half_open() {
        let s = FaultSchedule::new(vec![Fault::SensorDropout {
            start: Seconds::new(10.0),
            duration: Seconds::new(5.0),
        }]);
        assert!(s.sensor_available(Seconds::new(9.99)));
        assert!(!s.sensor_available(Seconds::new(10.0)));
        assert!(!s.sensor_available(Seconds::new(14.99)));
        assert!(s.sensor_available(Seconds::new(15.0)));
        assert_eq!(s.total_dropout(), Seconds::new(5.0));
        assert_eq!(s.dropout_since(Seconds::new(12.0)), Some(Seconds::new(10.0)));
        assert_eq!(s.dropout_since(Seconds::new(16.0)), None);
    }

    #[test]
    fn overlapping_brownouts_compound() {
        let s = FaultSchedule::new(vec![
            Fault::ComputeBrownout {
                start: Seconds::new(0.0),
                duration: Seconds::new(10.0),
                slowdown: 2.0,
            },
            Fault::ComputeBrownout {
                start: Seconds::new(5.0),
                duration: Seconds::new(10.0),
                slowdown: 3.0,
            },
        ]);
        assert_eq!(s.compute_slowdown(Seconds::new(2.0)), 2.0);
        assert_eq!(s.compute_slowdown(Seconds::new(7.0)), 6.0);
        assert_eq!(s.compute_slowdown(Seconds::new(12.0)), 3.0);
        assert_eq!(s.compute_slowdown(Seconds::new(20.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn rejects_speedup_brownout() {
        let _ = FaultSchedule::new(vec![Fault::ComputeBrownout {
            start: Seconds::ZERO,
            duration: Seconds::new(1.0),
            slowdown: 0.5,
        }]);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_zero_efficiency_sag() {
        let _ = FaultSchedule::new(vec![Fault::BatterySag {
            start: Seconds::ZERO,
            duration: Seconds::new(1.0),
            efficiency: 0.0,
        }]);
    }

    #[test]
    #[should_panic(expected = "drop rate")]
    fn rejects_certain_message_drop() {
        let _ = FaultSchedule::new(vec![Fault::MessageDrop {
            start: Seconds::ZERO,
            duration: Seconds::new(1.0),
            drop_rate: 1.0,
        }]);
    }

    #[test]
    fn stuck_and_bias_queries() {
        let s = FaultSchedule::new(vec![
            Fault::SensorStuck { start: Seconds::new(5.0), duration: Seconds::new(3.0) },
            Fault::SensorBias {
                start: Seconds::new(4.0),
                duration: Seconds::new(10.0),
                bias_m: 1.5,
            },
            Fault::SensorBias {
                start: Seconds::new(6.0),
                duration: Seconds::new(2.0),
                bias_m: 0.5,
            },
        ]);
        assert_eq!(s.stuck_since(Seconds::new(6.0)), Some(Seconds::new(5.0)));
        assert_eq!(s.stuck_since(Seconds::new(9.0)), None);
        assert_eq!(s.sensor_bias(Seconds::new(7.0)), 2.0);
        assert_eq!(s.sensor_bias(Seconds::new(12.0)), 1.5);
        // Stuck sensors still "produce" — availability is unaffected.
        assert!(s.sensor_available(Seconds::new(6.0)));
    }

    #[test]
    fn crash_counting_is_half_open() {
        let s = FaultSchedule::new(vec![
            Fault::ComputeCrash { at: Seconds::new(10.0) },
            Fault::ComputeCrash { at: Seconds::new(10.5) },
            Fault::ComputeCrash { at: Seconds::new(20.0) },
        ]);
        assert_eq!(s.crashes_between(Seconds::new(10.0), Seconds::new(11.0)), 2);
        assert_eq!(s.crashes_between(Seconds::new(11.0), Seconds::new(20.0)), 0);
        assert_eq!(s.crashes_between(Seconds::new(20.0), Seconds::new(21.0)), 1);
        // A point event is never "active".
        assert!(!s.any_active(Seconds::new(10.0)));
    }

    #[test]
    fn sag_and_message_drop_compound() {
        let s = FaultSchedule::new(vec![
            Fault::BatterySag {
                start: Seconds::ZERO,
                duration: Seconds::new(10.0),
                efficiency: 0.5,
            },
            Fault::BatterySag {
                start: Seconds::new(5.0),
                duration: Seconds::new(10.0),
                efficiency: 0.8,
            },
            Fault::MessageDrop {
                start: Seconds::ZERO,
                duration: Seconds::new(10.0),
                drop_rate: 0.5,
            },
            Fault::MessageDrop {
                start: Seconds::new(5.0),
                duration: Seconds::new(10.0),
                drop_rate: 0.5,
            },
        ]);
        assert_eq!(s.battery_efficiency(Seconds::new(7.0)), 0.4);
        assert!((s.message_drop_rate(Seconds::new(7.0)) - 0.75).abs() < 1e-12);
        assert_eq!(s.battery_efficiency(Seconds::new(12.0)), 0.8);
    }

    #[test]
    fn merged_outages_coalesce_overlaps() {
        let s = FaultSchedule::new(vec![
            Fault::SensorDropout { start: Seconds::new(1.0), duration: Seconds::new(4.0) },
            Fault::SensorStuck { start: Seconds::new(3.0), duration: Seconds::new(4.0) },
            Fault::SensorDropout { start: Seconds::new(10.0), duration: Seconds::new(1.0) },
        ]);
        let merged = s.merged_sensor_outages();
        assert_eq!(
            merged,
            vec![(Seconds::new(1.0), Seconds::new(7.0)), (Seconds::new(10.0), Seconds::new(11.0)),]
        );
    }

    #[test]
    fn sampled_schedule_is_deterministic_and_rate_scaled() {
        let horizon = Seconds::new(600.0);
        let a = FaultSchedule::sample(&FaultProfile::harsh(), horizon, 42);
        let b = FaultSchedule::sample(&FaultProfile::harsh(), horizon, 42);
        assert_eq!(a, b);
        let c = FaultSchedule::sample(&FaultProfile::harsh(), horizon, 43);
        assert_ne!(a, c, "different seeds draw different schedules");
        let calm = FaultSchedule::sample(&FaultProfile::calm(), horizon, 42);
        assert!(
            a.faults().len() > calm.faults().len(),
            "harsh ({}) should out-draw calm ({})",
            a.faults().len(),
            calm.faults().len()
        );
        let none = FaultSchedule::sample(&FaultProfile::none(), horizon, 42);
        assert!(none.faults().is_empty());
    }

    #[test]
    fn sampled_faults_start_inside_horizon() {
        let horizon = Seconds::new(120.0);
        let s = FaultSchedule::sample(&FaultProfile::harsh(), horizon, 9);
        for f in s.faults() {
            assert!(f.interval().0 < horizon, "onset past horizon: {f:?}");
        }
        // Sorted by onset.
        for w in s.faults().windows(2) {
            assert!(w[0].interval().0 <= w[1].interval().0);
        }
    }
}
