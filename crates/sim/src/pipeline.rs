//! The sensor → marshalling → kernel → actuation pipeline with explicit
//! data-movement taxes.
//!
//! This is the "forest" of Challenge 6: accelerating the kernel stage by
//! 1000× moves end-to-end latency only as far as Amdahl's Law and the "AI
//! tax" of ingest/marshalling allow. Experiment E7 sweeps
//! [`Pipeline::with_kernel_speedup`] and reports the end-to-end curve.

use crate::faults::FaultSchedule;
use crate::sensor::SensorSpec;
use m7_arch::platform::Platform;
use m7_arch::workload::KernelProfile;
use m7_flow::{
    EdgeSpec, GraphBuilder, LossModel, LossSeed, MessageType, ServerSpec, Service, SinkSpec,
    SourceSpec,
};
use m7_par::ParConfig;
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceHistogram};
use m7_units::{Bytes, BytesPerSecond, Hertz, Seconds};
use serde::{Deserialize, Serialize};

// Closed-loop pipeline observability (no-ops until `m7_trace::enable()`).
// Stage latencies and frame totals are pure functions of the pipeline
// model and seed, so everything here is deterministic-class. The stage
// span sites also emit one modeled-time frame timeline per simulate
// call (ingest → compute → actuate on the model's clock).
static SIM_SPAN: SpanSite = SpanSite::new("sim.pipeline.simulate", MetricClass::Deterministic);
static INGEST_SPAN: SpanSite = SpanSite::new("sim.pipeline.ingest", MetricClass::Deterministic);
static COMPUTE_SPAN: SpanSite = SpanSite::new("sim.pipeline.compute", MetricClass::Deterministic);
static ACTUATE_SPAN: SpanSite = SpanSite::new("sim.pipeline.actuate", MetricClass::Deterministic);
static INGEST_NS: TraceHistogram =
    TraceHistogram::new("sim.pipeline.ingest_ns", MetricClass::Deterministic);
static COMPUTE_NS: TraceHistogram =
    TraceHistogram::new("sim.pipeline.compute_ns", MetricClass::Deterministic);
static ACTUATE_NS: TraceHistogram =
    TraceHistogram::new("sim.pipeline.actuate_ns", MetricClass::Deterministic);
static FRAMES_IN: TraceCounter =
    TraceCounter::new("sim.pipeline.frames_in", MetricClass::Deterministic);
static FRAMES_PROCESSED: TraceCounter =
    TraceCounter::new("sim.pipeline.frames_processed", MetricClass::Deterministic);
static FRAMES_DROPPED: TraceCounter =
    TraceCounter::new("sim.pipeline.frames_dropped", MetricClass::Deterministic);
static FRAMES_LOST: TraceCounter =
    TraceCounter::new("sim.pipeline.frames_lost", MetricClass::Deterministic);

fn seconds_to_ns(s: Seconds) -> u64 {
    let ns = s.value() * 1e9;
    if ns.is_finite() && ns >= 0.0 {
        ns as u64
    } else {
        0
    }
}

/// Per-stage latency budget of one frame through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyBudget {
    /// Sensor readout, serialization, and copy-in (the "AI tax").
    pub ingest: Seconds,
    /// Kernel execution on the platform (after any modeled speedup).
    pub compute: Seconds,
    /// Actuation transport and settling.
    pub actuate: Seconds,
}

impl LatencyBudget {
    /// Total end-to-end latency.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.ingest + self.compute + self.actuate
    }

    /// Fraction of the total spent in the kernel — the Amdahl ceiling's
    /// complement.
    #[must_use]
    pub fn compute_fraction(&self) -> f64 {
        self.compute / self.total()
    }
}

/// Throughput and latency statistics from a simulated pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Frames produced by the sensor.
    pub frames_in: u64,
    /// Frames fully processed.
    pub frames_processed: u64,
    /// Frames dropped at the full queue.
    pub frames_dropped: u64,
    /// Frames lost in transport (inter-stage message drops).
    pub frames_lost: u64,
    /// Mean end-to-end latency of processed frames.
    pub mean_latency: Seconds,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Seconds,
    /// Achieved processing rate.
    pub throughput: Hertz,
}

impl PipelineStats {
    /// Fraction of produced frames that were dropped.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.frames_in == 0 {
            return 0.0;
        }
        self.frames_dropped as f64 / self.frames_in as f64
    }

    /// Fraction of produced frames lost in transport before the queue.
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.frames_in == 0 {
            return 0.0;
        }
        self.frames_lost as f64 / self.frames_in as f64
    }
}

/// A degenerate pipeline configuration, reported by
/// [`Pipeline::try_simulate`] instead of panicking or hanging.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum PipelineConfigError {
    /// The compute queue has capacity zero: every frame that arrives
    /// while the stage is busy would be dropped, which is a
    /// configuration mistake, not a model.
    ZeroQueueCapacity,
    /// The simulation duration is negative, NaN, or infinite. (The
    /// pre-dataflow simulator looped forever on a NaN duration.)
    InvalidDuration {
        /// The offending duration in seconds.
        seconds: f64,
    },
}

impl core::fmt::Display for PipelineConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::ZeroQueueCapacity => {
                write!(f, "queue capacity must be at least 1 (got 0)")
            }
            Self::InvalidDuration { seconds } => {
                write!(f, "simulation duration must be finite and non-negative, got {seconds}")
            }
        }
    }
}

impl std::error::Error for PipelineConfigError {}

/// An end-to-end perception/compute/actuation pipeline.
///
/// # Examples
///
/// ```
/// use m7_arch::platform::{Platform, PlatformKind};
/// use m7_arch::workload::KernelProfile;
/// use m7_sim::pipeline::Pipeline;
/// use m7_sim::sensor::SensorSpec;
///
/// let p = Pipeline::new(
///     SensorSpec::camera_vga(30.0),
///     Platform::preset(PlatformKind::CpuSimd),
///     KernelProfile::feature_extract(640, 480),
/// );
/// let budget = p.latency_budget();
/// assert!(budget.total().value() > 0.0);
/// // A 10× kernel speedup cannot deliver a 10× end-to-end speedup.
/// let sped = p.with_kernel_speedup(10.0);
/// let gain = budget.total() / sped.latency_budget().total();
/// assert!(gain < 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    sensor: SensorSpec,
    platform: Platform,
    kernel: KernelProfile,
    /// Marshalling/copy bandwidth from sensor memory into the compute
    /// device.
    marshalling_bandwidth: BytesPerSecond,
    /// Fixed per-frame driver/serialization overhead.
    marshalling_overhead: Seconds,
    /// Actuator transport and settling delay.
    actuation_latency: Seconds,
    /// Modeled accelerator speedup applied to the kernel stage only.
    kernel_speedup: f64,
    /// Frames buffered before the compute stage; beyond this they drop.
    queue_capacity: usize,
}

impl Pipeline {
    /// Creates a pipeline with representative marshalling and actuation
    /// defaults (1 GB/s copy path, 0.5 ms driver overhead, 2 ms actuation).
    #[must_use]
    pub fn new(sensor: SensorSpec, platform: Platform, kernel: KernelProfile) -> Self {
        Self {
            sensor,
            platform,
            kernel,
            marshalling_bandwidth: BytesPerSecond::from_gigabytes_per_second(1.0),
            marshalling_overhead: Seconds::from_millis(0.5),
            actuation_latency: Seconds::from_millis(2.0),
            kernel_speedup: 1.0,
            queue_capacity: 4,
        }
    }

    /// Overrides the marshalling path (bandwidth + fixed overhead).
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is non-positive or overhead negative.
    #[must_use]
    pub fn with_marshalling(mut self, bandwidth: BytesPerSecond, overhead: Seconds) -> Self {
        assert!(bandwidth.value() > 0.0, "bandwidth must be positive");
        assert!(overhead.value() >= 0.0, "overhead must be non-negative");
        self.marshalling_bandwidth = bandwidth;
        self.marshalling_overhead = overhead;
        self
    }

    /// Overrides the actuation latency.
    #[must_use]
    pub fn with_actuation(mut self, latency: Seconds) -> Self {
        self.actuation_latency = latency;
        self
    }

    /// Returns a pipeline whose kernel stage runs `factor`× faster (an
    /// idealized accelerator swap) — everything else unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn with_kernel_speedup(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "speedup must be positive");
        self.kernel_speedup = factor;
        self
    }

    /// Overrides the compute-stage queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// The sensor feeding this pipeline.
    #[must_use]
    pub fn sensor(&self) -> &SensorSpec {
        &self.sensor
    }

    /// Per-frame latency budget through the three stages.
    #[must_use]
    pub fn latency_budget(&self) -> LatencyBudget {
        let payload: Bytes = self.sensor.payload();
        let ingest = self.marshalling_overhead
            + Seconds::new(payload.value() / self.marshalling_bandwidth.value());
        let compute = self.platform.estimate(&self.kernel).latency / self.kernel_speedup;
        let budget = LatencyBudget { ingest, compute, actuate: self.actuation_latency };
        if m7_trace::enabled() {
            INGEST_NS.record(seconds_to_ns(budget.ingest));
            COMPUTE_NS.record(seconds_to_ns(budget.compute));
            ACTUATE_NS.record(seconds_to_ns(budget.actuate));
        }
        budget
    }

    /// End-to-end speedup delivered by a kernel-only speedup of `factor`,
    /// relative to this pipeline — the Amdahl curve of experiment E7.
    #[must_use]
    pub fn end_to_end_speedup(&self, factor: f64) -> f64 {
        let base = self.latency_budget().total();
        let sped = self.clone().with_kernel_speedup(self.kernel_speedup * factor);
        base / sped.latency_budget().total()
    }

    /// Simulates `duration` of operation with frames arriving at the sensor
    /// rate and a single-server compute stage.
    ///
    /// Frames that arrive while the queue is full are dropped — the
    /// backpressure behaviour of a real perception stack.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero queue capacity,
    /// non-finite or negative duration); use [`Pipeline::try_simulate`]
    /// for a typed error instead.
    #[must_use]
    pub fn simulate(&self, duration: Seconds) -> PipelineStats {
        self.simulate_with_faults(duration, &FaultSchedule::none(), 0)
    }

    /// Fallible form of [`Pipeline::simulate`].
    ///
    /// # Errors
    ///
    /// [`PipelineConfigError`] on a zero-capacity queue or a
    /// non-finite/negative duration.
    pub fn try_simulate(&self, duration: Seconds) -> Result<PipelineStats, PipelineConfigError> {
        self.try_simulate_with_faults(duration, &FaultSchedule::none(), 0)
    }

    /// Simulates `duration` of operation under a fault schedule,
    /// deterministic in `seed`.
    ///
    /// In addition to queue backpressure, frames arriving inside a
    /// [`crate::faults::Fault::MessageDrop`] window are lost in
    /// transport with the scheduled probability before they ever reach
    /// the compute queue — the inter-stage link failures of a real
    /// distributed autonomy stack. With an empty schedule this is
    /// byte-identical to [`Pipeline::simulate`].
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (zero queue capacity,
    /// non-finite or negative duration); use
    /// [`Pipeline::try_simulate_with_faults`] for a typed error
    /// instead.
    #[must_use]
    pub fn simulate_with_faults(
        &self,
        duration: Seconds,
        faults: &FaultSchedule,
        seed: u64,
    ) -> PipelineStats {
        match self.try_simulate_with_faults(duration, faults, seed) {
            Ok(stats) => stats,
            Err(e) => panic!("invalid pipeline config: {e}"),
        }
    }

    /// Fallible form of [`Pipeline::simulate_with_faults`].
    ///
    /// The simulation runs as a three-node `m7-flow` dataflow graph —
    /// sensor source, compute server behind a bounded drop-newest
    /// queue, actuation sink behind a delay wire — and is bit-identical
    /// to the pre-dataflow event-loop simulator for every valid
    /// configuration.
    ///
    /// # Errors
    ///
    /// [`PipelineConfigError`] on a zero-capacity queue or a
    /// non-finite/negative duration.
    pub fn try_simulate_with_faults(
        &self,
        duration: Seconds,
        faults: &FaultSchedule,
        seed: u64,
    ) -> Result<PipelineStats, PipelineConfigError> {
        if self.queue_capacity == 0 {
            return Err(PipelineConfigError::ZeroQueueCapacity);
        }
        if !(duration.value() >= 0.0 && duration.is_finite()) {
            return Err(PipelineConfigError::InvalidDuration { seconds: duration.value() });
        }

        let _span = SIM_SPAN.enter();
        let budget = self.latency_budget();
        let service = budget.ingest + budget.compute;

        let mut g = GraphBuilder::new("pipeline");
        let sensor = g
            .source::<SensorFrame>(
                "sensor",
                SourceSpec::new(self.sensor.rate(), self.sensor.payload()),
            )
            .expect("sensor specs are validated at construction");
        let compute = g
            .server::<SensorFrame, ActuationCmd>(
                "compute",
                ServerSpec::new(Service::fixed(service)),
            )
            .expect("service time is finite");
        let actuate = g
            .sink::<ActuationCmd>("actuate", SinkSpec::new())
            .expect("sink declaration is infallible");
        let schedule = faults.clone();
        g.connect(
            sensor,
            compute,
            EdgeSpec::queue(self.queue_capacity).loss(
                LossModel::from_fn(move |t| schedule.message_drop_rate(t))
                    // The historical transport-loss RNG stream, bit for
                    // bit: one ChaCha8 draw per arrival inside a fault
                    // window.
                    .with_seed(LossSeed::Fixed(seed ^ 0x1155_D20B_5EED_0003)),
            ),
        )
        .expect("capacity checked above");
        g.connect(compute, actuate, EdgeSpec::wire().latency(self.actuation_latency))
            .expect("wire into sink is valid");
        let graph = g.seal(ParConfig::serial()).expect("three-node chain is well-formed");
        let report = graph.run(duration).expect("duration checked above");

        let frames_in = report.node("sensor").expect("declared above").fired;
        let compute_node = report.node("compute").expect("declared above");
        let frames_processed = compute_node.processed;
        let link = report.edge("sensor", "compute").expect("declared above");
        let frames_dropped = link.dropped;
        let frames_lost = link.lost;
        let mut latencies = report.node("actuate").expect("declared above").latencies.clone();

        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let mean = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99 = if latencies.is_empty() {
            0.0
        } else {
            latencies[((latencies.len() as f64 * 0.99) as usize).min(latencies.len() - 1)]
        };
        if m7_trace::enabled() {
            FRAMES_IN.add(frames_in);
            FRAMES_PROCESSED.add(frames_processed);
            FRAMES_DROPPED.add(frames_dropped);
            FRAMES_LOST.add(frames_lost);
            // One representative frame's stage timeline on the modeled
            // clock: ingest, then compute, then actuation settling.
            let (ingest, compute, actuate) = (
                seconds_to_ns(budget.ingest),
                seconds_to_ns(budget.compute),
                seconds_to_ns(budget.actuate),
            );
            INGEST_SPAN.complete_modeled(0, ingest);
            COMPUTE_SPAN.complete_modeled(ingest, compute);
            ACTUATE_SPAN.complete_modeled(ingest.saturating_add(compute), actuate);
        }
        Ok(PipelineStats {
            frames_in,
            frames_processed,
            frames_dropped,
            frames_lost,
            mean_latency: Seconds::new(mean),
            p99_latency: Seconds::new(p99),
            throughput: Hertz::new(frames_processed as f64 / duration.value().max(1e-12)),
        })
    }
}

/// The sensor's frame payload flowing into the compute stage.
struct SensorFrame;
impl MessageType for SensorFrame {
    const NAME: &'static str = "sensor_frame";
}

/// The compute stage's command flowing to the actuator.
struct ActuationCmd;
impl MessageType for ActuationCmd {
    const NAME: &'static str = "actuation_cmd";
}

#[cfg(test)]
mod tests {
    use super::*;
    use m7_arch::platform::PlatformKind;

    fn vga_pipeline(kind: PlatformKind) -> Pipeline {
        Pipeline::new(
            SensorSpec::camera_vga(30.0),
            Platform::preset(kind),
            KernelProfile::feature_extract(640, 480),
        )
    }

    /// A full-HD pipeline heavy enough to overwhelm the scalar CPU.
    fn hd_pipeline(kind: PlatformKind) -> Pipeline {
        use crate::sensor::SensorKind;
        Pipeline::new(
            SensorSpec::new(SensorKind::Camera, Hertz::new(30.0), Bytes::new(1920.0 * 1080.0), 2.0),
            Platform::preset(kind),
            KernelProfile::feature_extract(1920, 1080),
        )
    }

    #[test]
    fn budget_components_positive() {
        let b = vga_pipeline(PlatformKind::CpuSimd).latency_budget();
        assert!(b.ingest.value() > 0.0);
        assert!(b.compute.value() > 0.0);
        assert!(b.actuate.value() > 0.0);
        assert!(b.compute_fraction() > 0.0 && b.compute_fraction() < 1.0);
    }

    #[test]
    fn amdahl_ceiling() {
        let p = vga_pipeline(PlatformKind::CpuScalar);
        let b = p.latency_budget();
        let limit = 1.0 / (1.0 - b.compute_fraction());
        let huge = p.end_to_end_speedup(1e9);
        assert!(huge < limit * 1.001, "end-to-end speedup {huge} must respect Amdahl {limit}");
        // Diminishing returns: 10→100 gains less than 1→10.
        let g10 = p.end_to_end_speedup(10.0);
        let g100 = p.end_to_end_speedup(100.0);
        assert!(g100 / g10 < g10 / 1.0);
    }

    #[test]
    fn fast_platform_keeps_up_with_camera() {
        let stats = hd_pipeline(PlatformKind::Gpu).simulate(Seconds::new(10.0));
        assert_eq!(stats.frames_dropped, 0, "GPU should keep up with 30 fps full-HD");
        assert!(stats.throughput.value() > 25.0);
        assert!(stats.mean_latency.value() > 0.0);
        assert!(stats.p99_latency >= stats.mean_latency);
    }

    #[test]
    fn slow_platform_drops_frames() {
        let stats = hd_pipeline(PlatformKind::CpuScalar).simulate(Seconds::new(10.0));
        assert!(stats.drop_rate() > 0.1, "scalar CPU cannot keep up: {:?}", stats);
        assert!(stats.throughput.value() < 30.0);
    }

    #[test]
    fn kernel_speedup_reduces_drops() {
        let base = hd_pipeline(PlatformKind::CpuScalar);
        let sped = base.clone().with_kernel_speedup(50.0);
        let a = base.simulate(Seconds::new(10.0));
        let b = sped.simulate(Seconds::new(10.0));
        assert!(b.drop_rate() < a.drop_rate());
        assert!(b.mean_latency < a.mean_latency);
    }

    #[test]
    fn marshalling_tax_bounds_speedup() {
        // Make the ingest tax dominate: slow copy path.
        let p = vga_pipeline(PlatformKind::CpuSimd).with_marshalling(
            BytesPerSecond::from_gigabytes_per_second(0.05),
            Seconds::from_millis(2.0),
        );
        let gain = p.end_to_end_speedup(1000.0);
        assert!(gain < 2.0, "ingest-dominated pipeline barely improves: {gain}");
    }

    #[test]
    fn stats_drop_rate_handles_zero_frames() {
        let stats = PipelineStats {
            frames_in: 0,
            frames_processed: 0,
            frames_dropped: 0,
            frames_lost: 0,
            mean_latency: Seconds::ZERO,
            p99_latency: Seconds::ZERO,
            throughput: Hertz::new(0.0),
        };
        assert_eq!(stats.drop_rate(), 0.0);
        assert_eq!(stats.loss_rate(), 0.0);
    }

    #[test]
    fn message_drops_lose_frames_in_transport() {
        use crate::faults::{Fault, FaultSchedule};
        let p = hd_pipeline(PlatformKind::Gpu);
        let schedule = FaultSchedule::new(vec![Fault::MessageDrop {
            start: Seconds::ZERO,
            duration: Seconds::new(1e6),
            drop_rate: 0.5,
        }]);
        let stats = p.simulate_with_faults(Seconds::new(10.0), &schedule, 1);
        let rate = stats.loss_rate();
        assert!(
            (0.35..0.65).contains(&rate),
            "half the frames should die in transport, got {rate}"
        );
        assert!(stats.frames_processed < stats.frames_in);
        // Deterministic in the seed.
        assert_eq!(stats, p.simulate_with_faults(Seconds::new(10.0), &schedule, 1));
        assert_ne!(
            stats.frames_lost,
            p.simulate_with_faults(Seconds::new(10.0), &schedule, 2).frames_lost
        );
    }

    #[test]
    fn zero_capacity_is_a_typed_error() {
        let p = vga_pipeline(PlatformKind::Gpu).with_queue_capacity(0);
        assert_eq!(p.try_simulate(Seconds::new(1.0)), Err(PipelineConfigError::ZeroQueueCapacity));
    }

    #[test]
    #[should_panic(expected = "invalid pipeline config")]
    fn zero_capacity_panics_in_the_legacy_api() {
        let _ = vga_pipeline(PlatformKind::Gpu).with_queue_capacity(0).simulate(Seconds::new(1.0));
    }

    #[test]
    fn degenerate_durations_are_typed_errors() {
        let p = vga_pipeline(PlatformKind::Gpu);
        // The pre-dataflow simulator looped forever on NaN.
        assert!(matches!(
            p.try_simulate(Seconds::new(f64::NAN)),
            Err(PipelineConfigError::InvalidDuration { .. })
        ));
        assert!(matches!(
            p.try_simulate(Seconds::new(-1.0)),
            Err(PipelineConfigError::InvalidDuration { .. })
        ));
        assert!(matches!(
            p.try_simulate(Seconds::new(f64::INFINITY)),
            Err(PipelineConfigError::InvalidDuration { .. })
        ));
        // Zero duration is valid: the t=0 arrival is still processed.
        let stats = p.try_simulate(Seconds::ZERO).expect("zero duration is fine");
        assert_eq!(stats.frames_in, 1);
    }

    #[test]
    fn try_simulate_matches_simulate() {
        let p = hd_pipeline(PlatformKind::CpuScalar);
        assert_eq!(p.try_simulate(Seconds::new(5.0)).unwrap(), p.simulate(Seconds::new(5.0)));
    }

    #[test]
    fn empty_schedule_matches_plain_simulate() {
        let p = hd_pipeline(PlatformKind::CpuScalar);
        let plain = p.simulate(Seconds::new(5.0));
        let faulted = p.simulate_with_faults(Seconds::new(5.0), &FaultSchedule::none(), 99);
        assert_eq!(plain, faulted);
        assert_eq!(plain.frames_lost, 0);
    }
}
