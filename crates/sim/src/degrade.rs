//! Graceful-degradation policies: what the autonomy stack *does* when a
//! fault is active.
//!
//! The paper's Challenge 6 argues that accelerator value must be scored
//! under "real-world effects like reliability and robustness". A fault
//! schedule alone only measures how a *blind* system dies; the
//! interesting design axis is the recovery machinery — watchdogs, retry,
//! dead-reckoning coast, kernel fallback, commanded safe-stop — and what
//! its nominal-time overhead buys in mission success. [`DegradationPolicy`]
//! packages those knobs so the rover and UAV closed loops, and the
//! campaign runner above them, can compare fault-blind and
//! degradation-aware configurations of the *same* vehicle.

use m7_units::Seconds;
use serde::{Deserialize, Serialize};

/// Retry a crashed autonomy stack with exponential backoff before giving
/// up and cold-booting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Warm-restart attempts before falling back to a cold boot.
    pub max_attempts: u32,
    /// Cost of the first warm restart; attempt `i` costs
    /// `backoff_base * 2^i`.
    pub backoff_base: Seconds,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 3, backoff_base: Seconds::new(0.5) }
    }
}

/// Coast on dead reckoning while perception is out, instead of creeping
/// blind or flying stale data at full speed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoastPolicy {
    /// Fraction of the last known safe speed to hold while coasting.
    pub speed_fraction: f64,
    /// Maximum time to trust dead reckoning before slowing to a creep.
    pub max_duration: Seconds,
    /// Watchdog delay before a stuck sensor is detected (staleness
    /// check period).
    pub detect_after: Seconds,
}

impl Default for CoastPolicy {
    fn default() -> Self {
        Self {
            speed_fraction: 0.6,
            max_duration: Seconds::new(4.0),
            detect_after: Seconds::new(0.5),
        }
    }
}

/// Command a controlled stop when remaining energy drops below a reserve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafeStopPolicy {
    /// Fraction of pack capacity held in reserve; when projected energy
    /// to finish exceeds what is left above the reserve, stop now rather
    /// than fall out of the sky later.
    pub reserve_fraction: f64,
}

impl Default for SafeStopPolicy {
    fn default() -> Self {
        Self { reserve_fraction: 0.08 }
    }
}

/// The graceful-degradation configuration a closed loop consults when
/// faults are active.
///
/// [`DegradationPolicy::none`] is the fault-blind baseline: no watchdog,
/// no retry, no fallback — the vehicle runs its nominal control law into
/// whatever the fault schedule throws at it. [`DegradationPolicy::full`]
/// enables every mechanism and pays a small monitoring tax
/// ([`DegradationPolicy::monitor_overhead`]) on nominal reaction time.
///
/// # Examples
///
/// ```
/// use m7_sim::degrade::DegradationPolicy;
///
/// let blind = DegradationPolicy::none();
/// assert!(!blind.is_aware());
/// assert_eq!(blind.monitor_overhead(), 1.0);
///
/// let aware = DegradationPolicy::full();
/// assert!(aware.is_aware());
/// assert!(aware.monitor_overhead() > 1.0, "awareness costs nominal latency");
///
/// // Policies compose à la carte: retry-only, no coast or safe-stop.
/// let retry_only = DegradationPolicy { retry: Some(Default::default()), ..DegradationPolicy::none() };
/// assert!(retry_only.is_aware());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradationPolicy {
    /// Warm-restart crashed compute with backoff (else: cold boot).
    pub retry: Option<RetryPolicy>,
    /// Dead-reckoning coast through perception outages (else: blind
    /// creep on dropout, full-speed stale data on stuck frames).
    pub coast: Option<CoastPolicy>,
    /// Swap the planner to a cheaper kernel variant under brownout or
    /// battery sag: lower quality (longer effective reaction distance)
    /// but far less compute power and latency.
    pub kernel_fallback: bool,
    /// Commanded safe-stop on low projected energy (else: fly until the
    /// pack dies).
    pub safe_stop: Option<SafeStopPolicy>,
}

impl DegradationPolicy {
    /// The fault-blind baseline: every mechanism off.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Every mechanism on, with default tuning.
    #[must_use]
    pub fn full() -> Self {
        Self {
            retry: Some(RetryPolicy::default()),
            coast: Some(CoastPolicy::default()),
            kernel_fallback: true,
            safe_stop: Some(SafeStopPolicy::default()),
        }
    }

    /// Whether any degradation mechanism is enabled (i.e. the stack runs
    /// health monitoring at all).
    #[must_use]
    pub fn is_aware(&self) -> bool {
        self.retry.is_some()
            || self.coast.is_some()
            || self.kernel_fallback
            || self.safe_stop.is_some()
    }

    /// Multiplier on nominal reaction time paid for health monitoring
    /// (watchdogs, heartbeats, state checkpoints). 1.0 when blind —
    /// awareness is not free, which is exactly the trade experiment E11
    /// measures.
    #[must_use]
    pub fn monitor_overhead(&self) -> f64 {
        if self.is_aware() {
            1.05
        } else {
            1.0
        }
    }

    /// Warm-restart cost of crash recovery attempt `attempt` (0-based),
    /// if retries are enabled and the attempt is within budget.
    #[must_use]
    pub fn retry_cost(&self, attempt: u32) -> Option<Seconds> {
        let r = self.retry?;
        if attempt < r.max_attempts {
            Some(Seconds::new(r.backoff_base.value() * f64::from(1u32 << attempt.min(16))))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blind_policy_has_no_overhead() {
        let p = DegradationPolicy::none();
        assert!(!p.is_aware());
        assert_eq!(p.monitor_overhead(), 1.0);
        assert_eq!(p.retry_cost(0), None);
    }

    #[test]
    fn full_policy_is_aware_and_taxed() {
        let p = DegradationPolicy::full();
        assert!(p.is_aware());
        assert!(p.monitor_overhead() > 1.0);
    }

    #[test]
    fn retry_backoff_doubles_then_exhausts() {
        let p = DegradationPolicy {
            retry: Some(RetryPolicy { max_attempts: 3, backoff_base: Seconds::new(0.5) }),
            ..DegradationPolicy::none()
        };
        assert_eq!(p.retry_cost(0), Some(Seconds::new(0.5)));
        assert_eq!(p.retry_cost(1), Some(Seconds::new(1.0)));
        assert_eq!(p.retry_cost(2), Some(Seconds::new(2.0)));
        assert_eq!(p.retry_cost(3), None, "budget exhausted -> cold boot");
    }

    #[test]
    fn single_mechanism_counts_as_aware() {
        let p = DegradationPolicy { kernel_fallback: true, ..DegradationPolicy::none() };
        assert!(p.is_aware());
    }
}
