//! End-to-end discrete-event simulation for autonomous systems.
//!
//! This crate is the MAVBench/RoSE-class substrate the paper's Challenge 6
//! ("Forest vs. Trees") and Challenge 4 ("Pump the Brakes") call for: it
//! closes the loop from sensors through compute to actuators and the
//! physical vehicle, so that kernel-level accelerator decisions can be
//! judged by *mission-level* outcomes.
//!
//! - [`des`] — a small deterministic discrete-event engine.
//! - [`sensor`] — rate/payload/noise models for cameras, lidars, IMUs.
//! - [`battery`] — energy storage and the mass-dependent hover-power model.
//! - [`pipeline`] — the sensor → marshalling → kernel → actuation pipeline
//!   with explicit data-movement taxes (the "AI tax").
//! - [`uav`] — a closed-loop point-mass UAV whose safe speed is coupled to
//!   its perception/planning latency and whose endurance is coupled to the
//!   mass and power of its compute tier.
//! - [`mission`] — mission specifications and outcome metrics.
//!
//! # Examples
//!
//! ```
//! use m7_sim::mission::MissionSpec;
//! use m7_sim::uav::{ComputeTier, Uav, UavConfig};
//!
//! let config = UavConfig::default().with_tier(ComputeTier::Embedded);
//! let uav = Uav::new(config);
//! let outcome = uav.fly(&MissionSpec::survey(1000.0), 99);
//! assert!(outcome.completed);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod battery;
pub mod campaign;
pub mod degrade;
pub mod des;
pub mod faults;
pub mod mission;
pub mod pipeline;
pub mod rover;
pub mod sensor;
pub mod thermal;
pub mod uav;
