//! A differential-drive ground rover with the *actual* motion planner in
//! the loop.
//!
//! Unlike the UAV model (which abstracts planning into a latency), the
//! rover plans every leg with the real RRT from `m7-kernels`, tracks the
//! smoothed path with pure pursuit, and pays for planning twice: once as
//! stationary time (the vehicle waits on compute, scaled by the compute
//! tier) and once as compute energy. This is the end-to-end loop the
//! paper's Challenge 6 asks designs to be judged in.

use crate::battery::Battery;
use crate::degrade::DegradationPolicy;
use crate::faults::{Fault, FaultSchedule};
use crate::uav::ComputeTier;
use m7_kernels::geometry::{normalize_angle, Pose2, Vec2};
use m7_kernels::planning::{CollisionWorld, Rrt, RrtConfig};
use m7_units::{Grams, Joules, Meters, MetersPerSecond, Seconds, Watts};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Blind creep speed on the ground while perception is out.
const ROVER_BLIND_CREEP: f64 = 0.2;
/// Stationary time for a cold reboot of the autonomy stack.
const ROVER_COLD_BOOT_S: f64 = 12.0;
/// Probability one warm restart revives a crashed stack.
const ROVER_WARM_RESTART_SUCCESS: f64 = 0.7;
/// Seed salt for the rover's fault-event RNG.
const ROVER_EVENT_SEED_SALT: u64 = 0x0BE7_ADE0_5EED_0002;

/// Rover chassis and power configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoverConfig {
    /// Chassis mass excluding compute.
    pub chassis_mass: Grams,
    /// Battery capacity.
    pub battery: Joules,
    /// Rolling-resistance coefficient (dimensionless).
    pub rolling_resistance: f64,
    /// Drivetrain base (idle) power.
    pub base_power: Watts,
    /// Top speed.
    pub max_speed: MetersPerSecond,
    /// Pure-pursuit lookahead distance (meters).
    pub lookahead: f64,
    /// Onboard compute tier (sets planning latency and power).
    pub tier: ComputeTier,
}

impl Default for RoverConfig {
    fn default() -> Self {
        Self {
            chassis_mass: Grams::new(8000.0),
            battery: Joules::from_watt_hours(100.0),
            rolling_resistance: 0.03,
            base_power: Watts::new(8.0),
            max_speed: MetersPerSecond::new(2.0),
            lookahead: 1.0,
            tier: ComputeTier::Embedded,
        }
    }
}

/// Outcome of a patrol run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoverOutcome {
    /// Goals reached before the battery died or planning failed.
    pub goals_reached: usize,
    /// Total elapsed time (driving + planning).
    pub time: Seconds,
    /// Time spent stationary waiting for the planner.
    pub planning_time: Seconds,
    /// Total energy drawn.
    pub energy: Joules,
    /// Distance actually driven.
    pub distance: Meters,
    /// `true` if every goal was reached.
    pub completed: bool,
}

impl RoverOutcome {
    /// Fraction of mission time spent waiting on compute.
    #[must_use]
    pub fn planning_fraction(&self) -> f64 {
        if self.time.value() <= 0.0 {
            return 0.0;
        }
        self.planning_time / self.time
    }
}

/// The closed-loop rover simulator.
///
/// # Examples
///
/// ```
/// use m7_kernels::geometry::Vec2;
/// use m7_kernels::planning::CollisionWorld;
/// use m7_sim::rover::{Rover, RoverConfig};
///
/// let world = CollisionWorld::new(20.0, 20.0);
/// let rover = Rover::new(RoverConfig::default());
/// let outcome = rover.patrol(&world, Vec2::new(1.0, 1.0), &[Vec2::new(18.0, 18.0)], 7);
/// assert!(outcome.completed);
/// ```
#[derive(Debug, Clone)]
pub struct Rover {
    config: RoverConfig,
}

impl Rover {
    /// Creates a rover from its configuration.
    #[must_use]
    pub fn new(config: RoverConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RoverConfig {
        &self.config
    }

    /// Drive power at speed `v`: rolling resistance plus drivetrain base.
    #[must_use]
    pub fn drive_power(&self, v: MetersPerSecond) -> Watts {
        const G: f64 = 9.81;
        let mass_kg = (self.config.chassis_mass + self.config.tier.mass()).to_kilograms().value();
        Watts::new(self.config.rolling_resistance * mass_kg * G * v.value())
            + self.config.base_power
    }

    /// Patrols from `start` through every goal in order, planning each leg
    /// with RRT and tracking it with pure pursuit. Deterministic in `seed`.
    #[must_use]
    pub fn patrol(
        &self,
        world: &CollisionWorld,
        start: Vec2,
        goals: &[Vec2],
        seed: u64,
    ) -> RoverOutcome {
        let dt = Seconds::new(0.05);
        let mut battery = Battery::new(self.config.battery);
        let mut pose = Pose2::new(start, 0.0);
        let mut time = Seconds::ZERO;
        let mut planning_time = Seconds::ZERO;
        let mut distance = Meters::new(0.0);
        let mut goals_reached = 0usize;
        let compute_power: Watts = self.config.tier.power();

        'mission: for (leg, &goal) in goals.iter().enumerate() {
            // Plan the leg (the rover sits still while compute runs).
            let planner = Rrt::new(RrtConfig::default(), seed ^ (leg as u64) << 8);
            let Some(raw) = planner.plan(world, pose.position, goal) else {
                break;
            };
            let path = raw.shortcut(world);
            let plan_cost = self.config.tier.plan_latency() * 20.0; // full leg plan ≈ 20 replans
            planning_time += plan_cost;
            time += plan_cost;
            if !battery.draw(compute_power + self.config.base_power, plan_cost) {
                break;
            }

            // Pure-pursuit tracking along the smoothed path.
            let mut s = 0.0f64; // arc-length progress of the lookahead point
            let max_steps = 200_000;
            for _ in 0..max_steps {
                if pose.position.distance(goal) < 0.5 {
                    goals_reached += 1;
                    continue 'mission;
                }
                // Advance the carrot to stay `lookahead` ahead of the rover.
                while s < path.length()
                    && path.point_at(s).distance(pose.position) < self.config.lookahead
                {
                    s += self.config.lookahead * 0.25;
                }
                let carrot = path.point_at(s.min(path.length()));
                let to_carrot = carrot - pose.position;
                let heading_error = normalize_angle(to_carrot.angle() - pose.heading);
                // Unicycle command: slow down for sharp turns.
                let v = self.config.max_speed
                    * (1.0 - 0.7 * (heading_error.abs() / core::f64::consts::PI));
                let omega = 2.5 * heading_error;
                // Integrate the kinematics.
                let step = v * dt;
                pose = Pose2::new(
                    pose.position + pose.forward() * step.value(),
                    pose.heading + omega * dt.value(),
                );
                distance += step;
                time += dt;
                let p = self.drive_power(v) + compute_power;
                if !battery.draw(p, dt) {
                    break 'mission;
                }
            }
            // Tracking stalled (should not happen on valid paths).
            break;
        }

        RoverOutcome {
            goals_reached,
            time,
            planning_time,
            energy: battery.used().min(battery.capacity()),
            distance,
            completed: goals_reached == goals.len(),
        }
    }

    /// Patrols under a fault schedule while consulting a
    /// [`DegradationPolicy`], deterministic in `seed`.
    ///
    /// A ground vehicle degrades differently from a UAV: stopping is
    /// always safe, so crashes and outages cost *time and energy* rather
    /// than the vehicle. Compute crashes park the rover while the stack
    /// restarts (warm retries if enabled, else a cold boot); sensor
    /// dropouts are crept through blind or coasted on dead reckoning;
    /// brownouts stretch the stationary planning stalls (the fallback
    /// kernel shrinks them); battery sag inflates every draw; and a
    /// safe-stop policy parks the rover once the reserve is reached
    /// instead of stranding it mid-leg.
    #[must_use]
    pub fn patrol_degraded(
        &self,
        world: &CollisionWorld,
        start: Vec2,
        goals: &[Vec2],
        faults: &FaultSchedule,
        policy: &DegradationPolicy,
        seed: u64,
    ) -> DegradedPatrolOutcome {
        let dt = Seconds::new(0.05);
        let mut battery = Battery::new(self.config.battery);
        let mut pose = Pose2::new(start, 0.0);
        let mut time = Seconds::ZERO;
        let mut planning_time = Seconds::ZERO;
        let mut distance = Meters::new(0.0);
        let mut goals_reached = 0usize;
        let compute_power: Watts = self.config.tier.power();
        let overhead = policy.monitor_overhead();
        let mut events = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ ROVER_EVENT_SEED_SALT);

        let mut crash_times: Vec<Seconds> = faults
            .faults()
            .iter()
            .filter_map(|f| match f {
                Fault::ComputeCrash { at } => Some(*at),
                _ => None,
            })
            .collect();
        crash_times.sort_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite crashes"));
        let mut next_crash = 0usize;
        let mut retries = 0u64;
        let mut cold_boots = 0u64;
        let mut coast_time = Seconds::ZERO;
        let mut safe_stopped = false;

        'mission: for (leg, &goal) in goals.iter().enumerate() {
            let planner = Rrt::new(RrtConfig::default(), seed ^ (leg as u64) << 8);
            let Some(raw) = planner.plan(world, pose.position, goal) else {
                break;
            };
            let path = raw.shortcut(world);
            // Brownouts stretch the planning stall; the fallback kernel
            // shrinks it (and its power) at no safety cost on the ground.
            let slowdown = faults.compute_slowdown(time);
            let stressed = slowdown >= 1.5 || faults.battery_efficiency(time) < 1.0;
            let (lat_scale, p_plan) = if policy.kernel_fallback && stressed {
                (0.5 * slowdown, compute_power * 0.35)
            } else {
                (slowdown, compute_power)
            };
            let plan_cost = self.config.tier.plan_latency() * 20.0 * lat_scale * overhead;
            planning_time += plan_cost;
            time += plan_cost;
            let eff = faults.battery_efficiency(time);
            let p_stall = Watts::new((p_plan + self.config.base_power).value() / eff);
            if !battery.draw(p_stall, plan_cost) {
                break;
            }

            let mut s = 0.0f64;
            let max_steps = 400_000;
            for _ in 0..max_steps {
                if pose.position.distance(goal) < 0.5 {
                    goals_reached += 1;
                    continue 'mission;
                }
                // Park for stack restarts.
                while next_crash < crash_times.len() && crash_times[next_crash] <= time {
                    next_crash += 1;
                    let mut downtime = Seconds::ZERO;
                    let mut revived = false;
                    let mut attempt = 0u32;
                    while let Some(cost) = policy.retry_cost(attempt) {
                        downtime += cost;
                        retries += 1;
                        attempt += 1;
                        if events.gen_bool(ROVER_WARM_RESTART_SUCCESS) {
                            revived = true;
                            break;
                        }
                    }
                    if !revived {
                        downtime += Seconds::new(ROVER_COLD_BOOT_S);
                        cold_boots += 1;
                    }
                    time += downtime;
                    if !battery.draw(self.config.base_power, downtime) {
                        break 'mission;
                    }
                }
                // Park for good once the reserve is reached.
                if let Some(ss) = policy.safe_stop {
                    if battery.state_of_charge() <= ss.reserve_fraction {
                        safe_stopped = true;
                        break 'mission;
                    }
                }
                while s < path.length()
                    && path.point_at(s).distance(pose.position) < self.config.lookahead
                {
                    s += self.config.lookahead * 0.25;
                }
                let carrot = path.point_at(s.min(path.length()));
                let to_carrot = carrot - pose.position;
                let heading_error = normalize_angle(to_carrot.angle() - pose.heading);
                let v_track = self.config.max_speed
                    * (1.0 - 0.7 * (heading_error.abs() / core::f64::consts::PI));
                // Perception outages cap speed: coast or creep.
                let v = if let Some(since) = faults.dropout_since(time) {
                    match policy.coast {
                        Some(c) if time - since < c.max_duration => {
                            coast_time += dt;
                            v_track * c.speed_fraction
                        }
                        _ => v_track.min(MetersPerSecond::new(ROVER_BLIND_CREEP)),
                    }
                } else {
                    v_track
                };
                let omega = 2.5 * heading_error;
                let step = v * dt;
                pose = Pose2::new(
                    pose.position + pose.forward() * step.value(),
                    pose.heading + omega * dt.value(),
                );
                distance += step;
                time += dt;
                let eff = faults.battery_efficiency(time);
                let p = Watts::new((self.drive_power(v) + compute_power).value() / eff);
                if !battery.draw(p, dt) {
                    break 'mission;
                }
            }
            break;
        }

        DegradedPatrolOutcome {
            outcome: RoverOutcome {
                goals_reached,
                time,
                planning_time,
                energy: battery.used().min(battery.capacity()),
                distance,
                completed: goals_reached == goals.len(),
            },
            safe_stopped,
            retries,
            cold_boots,
            coast_time,
        }
    }
}

/// Outcome of a fault-injected, policy-mediated patrol
/// ([`Rover::patrol_degraded`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedPatrolOutcome {
    /// The usual patrol metrics.
    pub outcome: RoverOutcome,
    /// The rover parked on reserve charge instead of stranding mid-leg.
    pub safe_stopped: bool,
    /// Warm-restart attempts spent on compute crashes.
    pub retries: u64,
    /// Cold reboots after exhausted (or absent) retry budgets.
    pub cold_boots: u64,
    /// Time spent coasting on dead reckoning.
    pub coast_time: Seconds,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_world() -> CollisionWorld {
        CollisionWorld::new(30.0, 30.0)
    }

    #[test]
    fn reaches_single_goal_in_open_world() {
        let rover = Rover::new(RoverConfig::default());
        let out = rover.patrol(&open_world(), Vec2::new(2.0, 2.0), &[Vec2::new(25.0, 25.0)], 1);
        assert!(out.completed, "open-world patrol must succeed: {out:?}");
        assert!(out.distance.value() > 30.0, "diagonal is ~32.5 m");
        assert!(out.energy.value() > 0.0);
    }

    #[test]
    fn multi_goal_patrol() {
        let mut world = CollisionWorld::new(30.0, 30.0);
        world.add_rect(Vec2::new(12.0, 5.0), Vec2::new(14.0, 25.0));
        let rover = Rover::new(RoverConfig::default());
        let goals = [Vec2::new(25.0, 5.0), Vec2::new(25.0, 28.0), Vec2::new(2.0, 28.0)];
        let out = rover.patrol(&world, Vec2::new(2.0, 2.0), &goals, 2);
        assert_eq!(out.goals_reached, 3);
        assert!(out.completed);
        assert!(out.planning_time.value() > 0.0);
    }

    #[test]
    fn weak_compute_spends_more_time_planning() {
        let world = open_world();
        let goals = [Vec2::new(28.0, 28.0)];
        let fast =
            Rover::new(RoverConfig { tier: ComputeTier::EmbeddedGpu, ..RoverConfig::default() })
                .patrol(&world, Vec2::new(1.0, 1.0), &goals, 3);
        let slow = Rover::new(RoverConfig { tier: ComputeTier::Micro, ..RoverConfig::default() })
            .patrol(&world, Vec2::new(1.0, 1.0), &goals, 3);
        assert!(slow.planning_fraction() > fast.planning_fraction());
        assert!(slow.time > fast.time, "waiting on compute slows the mission");
    }

    #[test]
    fn dead_battery_aborts() {
        let config = RoverConfig {
            battery: Joules::new(200.0), // tiny
            ..RoverConfig::default()
        };
        let out = Rover::new(config).patrol(
            &open_world(),
            Vec2::new(1.0, 1.0),
            &[Vec2::new(28.0, 28.0)],
            4,
        );
        assert!(!out.completed);
        assert!(out.distance.value() < 40.0);
    }

    #[test]
    fn unreachable_goal_fails_cleanly() {
        let mut world = CollisionWorld::new(20.0, 20.0);
        world.add_rect(Vec2::new(9.0, 0.0), Vec2::new(11.0, 20.0)); // full wall
        let out = Rover::new(RoverConfig::default()).patrol(
            &world,
            Vec2::new(2.0, 10.0),
            &[Vec2::new(18.0, 10.0)],
            5,
        );
        assert!(!out.completed);
        assert_eq!(out.goals_reached, 0);
    }

    #[test]
    fn drive_power_grows_with_speed_and_mass() {
        let rover = Rover::new(RoverConfig::default());
        let slow = rover.drive_power(MetersPerSecond::new(0.5));
        let fast = rover.drive_power(MetersPerSecond::new(2.0));
        assert!(fast > slow);
        let heavy = Rover::new(RoverConfig {
            chassis_mass: Grams::new(20_000.0),
            ..RoverConfig::default()
        });
        assert!(heavy.drive_power(MetersPerSecond::new(2.0)) > fast);
    }

    #[test]
    fn degraded_patrol_with_no_faults_matches_legacy_shape() {
        let world = open_world();
        let rover = Rover::new(RoverConfig::default());
        let goals = [Vec2::new(25.0, 25.0)];
        let legacy = rover.patrol(&world, Vec2::new(2.0, 2.0), &goals, 7);
        let degraded = rover.patrol_degraded(
            &world,
            Vec2::new(2.0, 2.0),
            &goals,
            &FaultSchedule::none(),
            &DegradationPolicy::none(),
            7,
        );
        assert_eq!(degraded.outcome, legacy, "blind + faultless replays the legacy loop");
        assert!(!degraded.safe_stopped);
        assert_eq!(degraded.retries, 0);
    }

    #[test]
    fn crashes_cost_the_blind_rover_more_time() {
        let world = open_world();
        let rover = Rover::new(RoverConfig::default());
        let goals = [Vec2::new(25.0, 25.0)];
        let schedule = FaultSchedule::new(vec![
            Fault::ComputeCrash { at: Seconds::new(4.0) },
            Fault::ComputeCrash { at: Seconds::new(9.0) },
        ]);
        let blind = rover.patrol_degraded(
            &world,
            Vec2::new(2.0, 2.0),
            &goals,
            &schedule,
            &DegradationPolicy::none(),
            8,
        );
        let aware = rover.patrol_degraded(
            &world,
            Vec2::new(2.0, 2.0),
            &goals,
            &schedule,
            &DegradationPolicy::full(),
            8,
        );
        assert!(blind.outcome.completed && aware.outcome.completed);
        assert_eq!(blind.cold_boots, 2);
        assert!(aware.retries >= 2);
        assert!(
            aware.outcome.time < blind.outcome.time,
            "warm restarts park the rover for less time: {} vs {}",
            aware.outcome.time,
            blind.outcome.time
        );
    }

    #[test]
    fn safe_stop_parks_on_reserve() {
        let config = RoverConfig {
            battery: Joules::new(800.0), // not enough for the long patrol
            ..RoverConfig::default()
        };
        let rover = Rover::new(config);
        let goals = [Vec2::new(28.0, 28.0), Vec2::new(2.0, 28.0), Vec2::new(28.0, 2.0)];
        let aware = rover.patrol_degraded(
            &open_world(),
            Vec2::new(1.0, 1.0),
            &goals,
            &FaultSchedule::none(),
            &DegradationPolicy::full(),
            10,
        );
        assert!(!aware.outcome.completed);
        assert!(aware.safe_stopped, "the rover should park on reserve, not strand");
        assert!(aware.outcome.energy < Joules::new(800.0));
    }

    #[test]
    fn degraded_patrol_is_deterministic() {
        let world = open_world();
        let rover = Rover::new(RoverConfig::default());
        let goals = [Vec2::new(20.0, 25.0)];
        let schedule =
            FaultSchedule::sample(&crate::faults::FaultProfile::harsh(), Seconds::new(120.0), 3);
        let a = rover.patrol_degraded(
            &world,
            Vec2::new(1.0, 1.0),
            &goals,
            &schedule,
            &DegradationPolicy::full(),
            3,
        );
        let b = rover.patrol_degraded(
            &world,
            Vec2::new(1.0, 1.0),
            &goals,
            &schedule,
            &DegradationPolicy::full(),
            3,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic() {
        let world = open_world();
        let rover = Rover::new(RoverConfig::default());
        let a = rover.patrol(&world, Vec2::new(1.0, 1.0), &[Vec2::new(20.0, 25.0)], 9);
        let b = rover.patrol(&world, Vec2::new(1.0, 1.0), &[Vec2::new(20.0, 25.0)], 9);
        assert_eq!(a, b);
    }
}
