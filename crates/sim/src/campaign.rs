//! Deterministic Monte-Carlo fault-injection campaigns.
//!
//! One fault schedule is one draw from an environment; robustness is a
//! property of the *distribution*. [`CampaignRunner`] fans N seeded
//! schedules across the deterministic `m7-par` pool — per-run seeds come
//! from [`m7_par::derive_seed`], results are aggregated in index order,
//! and pooled latency percentiles use a total order — so a campaign
//! report is byte-identical at `M7_THREADS=1` and `M7_THREADS=8`. That
//! determinism is what lets experiment E11 compare fault-blind and
//! degradation-aware designs *under the same fault draws* and lets the
//! golden-report tests pin the output.

use crate::degrade::DegradationPolicy;
use crate::faults::{FaultProfile, FaultSchedule};
use crate::mission::MissionSpec;
use crate::uav::{FaultedOutcome, Uav};
use m7_par::{derive_seed, ParConfig};
use m7_trace::{MetricClass, SpanSite, TraceCounter, TraceHistogram};
use m7_units::Seconds;
use serde::{Deserialize, Serialize};

// Campaign observability (no-ops until `m7_trace::enable()`). Fault
// draws, outcomes, and degradation times are pure functions of the root
// seed, so every metric here is deterministic-class.
static CAMPAIGN_SPAN: SpanSite = SpanSite::new("sim.campaign.run", MetricClass::Deterministic);
static RUNS: TraceCounter = TraceCounter::new("sim.campaign.runs", MetricClass::Deterministic);
static SUCCESSES: TraceCounter =
    TraceCounter::new("sim.campaign.successes", MetricClass::Deterministic);
static SAFE_STOPS: TraceCounter =
    TraceCounter::new("sim.campaign.safe_stops", MetricClass::Deterministic);
static CRASHES: TraceCounter =
    TraceCounter::new("sim.campaign.crashes", MetricClass::Deterministic);
static RETRIES: TraceCounter =
    TraceCounter::new("sim.campaign.retries", MetricClass::Deterministic);
static FAULTS_SCHEDULED: TraceCounter =
    TraceCounter::new("sim.faults.scheduled", MetricClass::Deterministic);
static COAST_NS: TraceHistogram =
    TraceHistogram::new("sim.campaign.coast_ns", MetricClass::Deterministic);
static FALLBACK_NS: TraceHistogram =
    TraceHistogram::new("sim.campaign.fallback_ns", MetricClass::Deterministic);

fn seconds_to_ns(s: Seconds) -> u64 {
    let ns = s.value() * 1e9;
    if ns.is_finite() && ns >= 0.0 {
        ns as u64
    } else {
        0
    }
}

/// Size and environment of a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of independent mission runs (fault-schedule draws).
    pub runs: usize,
    /// Hazard rates the schedules are drawn from.
    pub profile: FaultProfile,
    /// Horizon over which faults are scheduled; should cover the longest
    /// plausible mission duration.
    pub horizon: Seconds,
}

impl CampaignConfig {
    /// A campaign of `runs` draws from `profile` over `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is zero.
    #[must_use]
    pub fn new(runs: usize, profile: FaultProfile, horizon: Seconds) -> Self {
        assert!(runs > 0, "a campaign needs at least one run");
        Self { runs, profile, horizon }
    }
}

/// Aggregated robustness metrics over a campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Runs executed.
    pub runs: usize,
    /// Runs that completed the mission (and were not lost).
    pub successes: usize,
    /// Runs ending in a commanded safe-stop.
    pub safe_stops: usize,
    /// Runs ending in vehicle loss (collision or mid-air battery death).
    pub crashes: usize,
    /// Mean mission time over all runs (s).
    pub mean_time_s: f64,
    /// Mean energy drawn over all runs (J).
    pub mean_energy_j: f64,
    /// Mean time-to-failure over lost runs (s); `None` if nothing was
    /// lost.
    pub mttf_s: Option<f64>,
    /// Median effective reaction latency while faults were active (s).
    pub degraded_p50_s: Option<f64>,
    /// 90th-percentile degraded reaction latency (s).
    pub degraded_p90_s: Option<f64>,
    /// 99th-percentile degraded reaction latency (s).
    pub degraded_p99_s: Option<f64>,
    /// Mean warm-restart attempts per run.
    pub mean_retries: f64,
    /// Mean time per run spent coasting on dead reckoning (s).
    pub mean_coast_s: f64,
    /// Mean time per run spent on the fallback kernel (s).
    pub mean_fallback_s: f64,
}

impl RobustnessReport {
    /// Mission success rate in `[0, 1]`.
    #[must_use]
    pub fn success_rate(&self) -> f64 {
        self.successes as f64 / self.runs as f64
    }

    /// Safe-stop rate in `[0, 1]`.
    #[must_use]
    pub fn safe_stop_rate(&self) -> f64 {
        self.safe_stops as f64 / self.runs as f64
    }

    /// Vehicle-loss rate in `[0, 1]`.
    #[must_use]
    pub fn crash_rate(&self) -> f64 {
        self.crashes as f64 / self.runs as f64
    }
}

/// Runs one vehicle + mission + policy against N drawn fault schedules.
///
/// # Examples
///
/// ```
/// use m7_par::ParConfig;
/// use m7_sim::campaign::{CampaignConfig, CampaignRunner};
/// use m7_sim::degrade::DegradationPolicy;
/// use m7_sim::faults::FaultProfile;
/// use m7_sim::mission::MissionSpec;
/// use m7_sim::uav::{Uav, UavConfig};
/// use m7_units::Seconds;
///
/// let runner = CampaignRunner::new(
///     Uav::new(UavConfig::default()),
///     MissionSpec::survey(400.0),
///     DegradationPolicy::full(),
///     CampaignConfig::new(8, FaultProfile::calm(), Seconds::new(120.0)),
/// );
/// let report = runner.run(42, &ParConfig::serial());
/// assert_eq!(report.runs, 8);
/// // Same root seed, any thread count -> identical report.
/// assert_eq!(report, runner.run(42, &ParConfig::with_threads(4)));
/// ```
#[derive(Debug, Clone)]
pub struct CampaignRunner {
    uav: Uav,
    mission: MissionSpec,
    policy: DegradationPolicy,
    config: CampaignConfig,
}

impl CampaignRunner {
    /// Creates a campaign over a vehicle, mission, and policy.
    #[must_use]
    pub fn new(
        uav: Uav,
        mission: MissionSpec,
        policy: DegradationPolicy,
        config: CampaignConfig,
    ) -> Self {
        Self { uav, mission, policy, config }
    }

    /// The campaign configuration.
    #[must_use]
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// Runs the campaign, deterministic in `root_seed` for any thread
    /// count.
    ///
    /// Run `i` draws its schedule *and* its in-flight randomness from
    /// `derive_seed(root_seed, i)`, so two campaigns with the same root
    /// seed see the same fault draws run for run — the apples-to-apples
    /// comparison experiment E11 depends on.
    #[must_use]
    pub fn run(&self, root_seed: u64, par: &ParConfig) -> RobustnessReport {
        let _span = CAMPAIGN_SPAN.enter();
        let outcomes: Vec<FaultedOutcome> = par.par_map_indexed(self.config.runs, |i| {
            let seed = derive_seed(root_seed, i as u64);
            let schedule = FaultSchedule::sample(&self.config.profile, self.config.horizon, seed);
            FAULTS_SCHEDULED.add(schedule.faults().len() as u64);
            self.uav.fly_degraded(&self.mission, &schedule, &self.policy, seed)
        });
        Self::aggregate(&outcomes)
    }

    /// Aggregates outcomes in index order (thread-count independent).
    fn aggregate(outcomes: &[FaultedOutcome]) -> RobustnessReport {
        let runs = outcomes.len();
        let successes = outcomes.iter().filter(|o| o.succeeded()).count();
        let safe_stops = outcomes.iter().filter(|o| o.safe_stopped).count();
        let crashes = outcomes.iter().filter(|o| o.crashed).count();
        if m7_trace::enabled() {
            RUNS.add(runs as u64);
            SUCCESSES.add(successes as u64);
            SAFE_STOPS.add(safe_stops as u64);
            CRASHES.add(crashes as u64);
            for o in outcomes {
                RETRIES.add(o.retries);
                COAST_NS.record(seconds_to_ns(o.coast_time));
                FALLBACK_NS.record(seconds_to_ns(o.fallback_time));
            }
        }
        let mean = |f: &dyn Fn(&FaultedOutcome) -> f64| -> f64 {
            outcomes.iter().map(f).sum::<f64>() / runs as f64
        };
        let mean_time_s = mean(&|o| o.mission.time.value());
        let mean_energy_j = mean(&|o| o.mission.energy.value());
        let mean_retries = mean(&|o| o.retries as f64);
        let mean_coast_s = mean(&|o| o.coast_time.value());
        let mean_fallback_s = mean(&|o| o.fallback_time.value());

        let failures: Vec<f64> =
            outcomes.iter().filter_map(|o| o.time_to_failure.map(|t| t.value())).collect();
        let mttf_s = if failures.is_empty() {
            None
        } else {
            Some(failures.iter().sum::<f64>() / failures.len() as f64)
        };

        // Pool every degraded-latency sample, then sort with a total
        // order so percentile cuts are identical at any thread count.
        let mut latencies: Vec<f64> =
            outcomes.iter().flat_map(|o| o.degraded_latencies_s.iter().copied()).collect();
        latencies.sort_by(f64::total_cmp);
        let pct = |p: f64| -> Option<f64> {
            if latencies.is_empty() {
                None
            } else {
                let idx = ((latencies.len() - 1) as f64 * p).round() as usize;
                Some(latencies[idx])
            }
        };

        RobustnessReport {
            runs,
            successes,
            safe_stops,
            crashes,
            mean_time_s,
            mean_energy_j,
            mttf_s,
            degraded_p50_s: pct(0.50),
            degraded_p90_s: pct(0.90),
            degraded_p99_s: pct(0.99),
            mean_retries,
            mean_coast_s,
            mean_fallback_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uav::UavConfig;

    fn tiny_runner(policy: DegradationPolicy) -> CampaignRunner {
        CampaignRunner::new(
            Uav::new(UavConfig::default()),
            MissionSpec::survey(300.0),
            policy,
            CampaignConfig::new(6, FaultProfile::calm(), Seconds::new(90.0)),
        )
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let runner = tiny_runner(DegradationPolicy::full());
        let serial = runner.run(42, &ParConfig::serial());
        let threaded = runner.run(42, &ParConfig::with_threads(8));
        assert_eq!(serial, threaded);
    }

    #[test]
    fn nominal_campaign_always_succeeds() {
        let runner = CampaignRunner::new(
            Uav::new(UavConfig::default()),
            MissionSpec::survey(300.0),
            DegradationPolicy::none(),
            CampaignConfig::new(5, FaultProfile::none(), Seconds::new(60.0)),
        );
        let report = runner.run(1, &ParConfig::serial());
        assert_eq!(report.successes, 5);
        assert_eq!(report.success_rate(), 1.0);
        assert_eq!(report.crashes, 0);
        assert_eq!(report.mttf_s, None);
        assert_eq!(report.degraded_p50_s, None, "no faults, no degraded samples");
    }

    #[test]
    fn percentiles_are_ordered() {
        let runner = CampaignRunner::new(
            Uav::new(UavConfig::default()),
            MissionSpec::survey(400.0),
            DegradationPolicy::full(),
            CampaignConfig::new(8, FaultProfile::harsh(), Seconds::new(120.0)),
        );
        let report = runner.run(7, &ParConfig::serial());
        let (p50, p90, p99) = (
            report.degraded_p50_s.expect("harsh profile produces samples"),
            report.degraded_p90_s.expect("p90"),
            report.degraded_p99_s.expect("p99"),
        );
        assert!(p50 <= p90 && p90 <= p99, "{p50} <= {p90} <= {p99}");
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_run_campaign_is_rejected() {
        let _ = CampaignConfig::new(0, FaultProfile::none(), Seconds::new(1.0));
    }
}
