//! A lumped thermal model with throttling — the "power and thermal
//! characteristics" the paper's end-to-end-modeling opportunity (§3.1)
//! says simulators must capture.
//!
//! First-order RC: `C dT/dt = P − (T − T_ambient) / R`. When the junction
//! temperature crosses the throttle point, the platform sheds performance
//! linearly until the critical temperature, where it runs at its floor
//! throughput. Sustained workloads on passively-cooled edge boxes live in
//! exactly this regime.

use m7_units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Thermal parameters of a compute package.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalConfig {
    /// Ambient temperature (°C).
    pub ambient_c: f64,
    /// Thermal resistance junction→ambient (°C/W).
    pub resistance_c_per_w: f64,
    /// Thermal capacitance (J/°C).
    pub capacitance_j_per_c: f64,
    /// Temperature where throttling begins (°C).
    pub throttle_c: f64,
    /// Temperature of maximum throttling (°C).
    pub critical_c: f64,
    /// Fraction of full performance retained at `critical_c`.
    pub floor_fraction: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        // A passively cooled embedded module.
        Self {
            ambient_c: 25.0,
            resistance_c_per_w: 2.0,
            capacitance_j_per_c: 40.0,
            throttle_c: 85.0,
            critical_c: 105.0,
            floor_fraction: 0.3,
        }
    }
}

/// The lumped thermal state of one package.
///
/// # Examples
///
/// ```
/// use m7_sim::thermal::{ThermalConfig, ThermalState};
/// use m7_units::{Seconds, Watts};
///
/// let mut t = ThermalState::new(ThermalConfig::default());
/// // 40 W sustained on a 2 °C/W package heads toward 105 °C and throttles.
/// for _ in 0..600 {
///     t.step(Watts::new(40.0), Seconds::new(1.0));
/// }
/// assert!(t.performance_scale() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    config: ThermalConfig,
    temperature_c: f64,
    /// Seconds spent throttled so far.
    throttled_time: f64,
}

impl ThermalState {
    /// Creates a package at ambient temperature.
    #[must_use]
    pub fn new(config: ThermalConfig) -> Self {
        Self { config, temperature_c: config.ambient_c, throttled_time: 0.0 }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ThermalConfig {
        &self.config
    }

    /// Current junction temperature (°C).
    #[must_use]
    pub fn temperature_c(&self) -> f64 {
        self.temperature_c
    }

    /// Cumulative time spent above the throttle point.
    #[must_use]
    pub fn throttled_time(&self) -> Seconds {
        Seconds::new(self.throttled_time)
    }

    /// Steady-state temperature under sustained `power`.
    #[must_use]
    pub fn steady_state_c(&self, power: Watts) -> f64 {
        self.config.ambient_c + power.value() * self.config.resistance_c_per_w
    }

    /// The performance multiplier at the current temperature: 1.0 below the
    /// throttle point, ramping linearly down to `floor_fraction` at the
    /// critical temperature.
    #[must_use]
    pub fn performance_scale(&self) -> f64 {
        let c = &self.config;
        if self.temperature_c <= c.throttle_c {
            return 1.0;
        }
        if self.temperature_c >= c.critical_c {
            return c.floor_fraction;
        }
        let t = (self.temperature_c - c.throttle_c) / (c.critical_c - c.throttle_c);
        1.0 - t * (1.0 - c.floor_fraction)
    }

    /// Advances the RC model by `dt` under dissipated `power`.
    pub fn step(&mut self, power: Watts, dt: Seconds) {
        let c = &self.config;
        // Sub-step for stability when dt is large relative to RC.
        let tau = c.resistance_c_per_w * c.capacitance_j_per_c;
        let substeps = (dt.value() / (tau * 0.1)).ceil().max(1.0) as usize;
        let h = dt.value() / substeps as f64;
        for _ in 0..substeps {
            let flow_out = (self.temperature_c - c.ambient_c) / c.resistance_c_per_w;
            let dtemp = (power.value() - flow_out) / c.capacitance_j_per_c;
            self.temperature_c += dtemp * h;
            if self.temperature_c > c.throttle_c {
                self.throttled_time += h;
            }
        }
    }

    /// The largest power this package can dissipate indefinitely without
    /// ever throttling.
    #[must_use]
    pub fn sustainable_power(&self) -> Watts {
        Watts::new(
            (self.config.throttle_c - self.config.ambient_c) / self.config.resistance_c_per_w,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cool_package_runs_full_speed() {
        let t = ThermalState::new(ThermalConfig::default());
        assert_eq!(t.performance_scale(), 1.0);
        assert_eq!(t.temperature_c(), 25.0);
    }

    #[test]
    fn converges_to_steady_state() {
        let mut t = ThermalState::new(ThermalConfig::default());
        let power = Watts::new(20.0);
        for _ in 0..5000 {
            t.step(power, Seconds::new(1.0));
        }
        let expected = t.steady_state_c(power); // 25 + 40 = 65 °C
        assert!((t.temperature_c() - expected).abs() < 0.5, "got {}", t.temperature_c());
        assert_eq!(t.performance_scale(), 1.0, "65 °C is below the throttle point");
    }

    #[test]
    fn sustained_overload_throttles() {
        let mut t = ThermalState::new(ThermalConfig::default());
        for _ in 0..2000 {
            t.step(Watts::new(45.0), Seconds::new(1.0)); // steady state 115 °C
        }
        assert!(t.performance_scale() <= 0.31, "should hit the floor: {}", t.performance_scale());
        assert!(t.throttled_time().value() > 0.0);
    }

    #[test]
    fn throttle_ramp_is_linear() {
        let mut t = ThermalState::new(ThermalConfig::default());
        t.temperature_c = 95.0; // halfway between 85 and 105
        let expected = 1.0 - 0.5 * (1.0 - 0.3);
        assert!((t.performance_scale() - expected).abs() < 1e-12);
    }

    #[test]
    fn sustainable_power_matches_throttle_point() {
        let t = ThermalState::new(ThermalConfig::default());
        assert_eq!(t.sustainable_power(), Watts::new(30.0)); // (85-25)/2
                                                             // Just below it never throttles.
        let mut s = ThermalState::new(ThermalConfig::default());
        for _ in 0..5000 {
            s.step(Watts::new(29.0), Seconds::new(1.0));
        }
        assert_eq!(s.performance_scale(), 1.0);
    }

    #[test]
    fn throttle_has_thermal_hysteresis() {
        // The RC mass makes throttling hysteretic in *time*: performance
        // neither collapses the instant overload power is applied nor
        // recovers the instant it is removed.
        let mut t = ThermalState::new(ThermalConfig::default());
        t.step(Watts::new(45.0), Seconds::new(1.0));
        assert_eq!(t.performance_scale(), 1.0, "one second of overload cannot throttle yet");

        // Soak to the throttled steady state (45 W -> 115 C).
        for _ in 0..2000 {
            t.step(Watts::new(45.0), Seconds::new(1.0));
        }
        let throttled = t.performance_scale();
        assert!(throttled < 1.0);
        let accumulated = t.throttled_time();

        // Dropping to a sustainable power does not restore performance
        // immediately: the package must first bleed stored heat.
        t.step(Watts::new(20.0), Seconds::new(1.0));
        assert!(
            t.performance_scale() < 1.0,
            "still throttled right after the power drop: {}",
            t.performance_scale()
        );
        assert!(t.throttled_time() >= accumulated, "throttled time is monotone");

        // Eventually the 20 W steady state (65 C) clears the throttle.
        let mut recovery_s = 0.0;
        while t.performance_scale() < 1.0 {
            t.step(Watts::new(20.0), Seconds::new(1.0));
            recovery_s += 1.0;
            assert!(recovery_s < 5000.0, "must eventually recover");
        }
        assert!(recovery_s > 5.0, "recovery takes thermal time, got {recovery_s} s");
    }

    #[test]
    fn throttled_time_only_grows_above_throttle_point() {
        let mut t = ThermalState::new(ThermalConfig::default());
        for _ in 0..500 {
            t.step(Watts::new(20.0), Seconds::new(1.0)); // steady 65 C
        }
        assert_eq!(t.throttled_time(), Seconds::ZERO);
    }

    #[test]
    fn cooling_recovers_performance() {
        let mut t = ThermalState::new(ThermalConfig::default());
        for _ in 0..2000 {
            t.step(Watts::new(45.0), Seconds::new(1.0));
        }
        assert!(t.performance_scale() < 1.0);
        for _ in 0..2000 {
            t.step(Watts::new(0.0), Seconds::new(1.0));
        }
        assert_eq!(t.performance_scale(), 1.0, "idle cooling restores full speed");
        assert!((t.temperature_c() - 25.0).abs() < 1.0);
    }
}
