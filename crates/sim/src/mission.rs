//! Mission specifications and mission-level outcome metrics.
//!
//! The paper's Challenge 2 argues for *system-level* metrics; these types
//! are what the framework reports instead of raw kernel throughput.

use m7_units::{Joules, Meters, MetersPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// A mission for a simulated vehicle.
///
/// # Examples
///
/// ```
/// use m7_sim::mission::MissionSpec;
///
/// let m = MissionSpec::survey(2000.0);
/// assert_eq!(m.distance().value(), 2000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionSpec {
    name: String,
    distance: Meters,
    /// Extra payload carried (grams) — deliveries carry cargo.
    payload_grams: f64,
    /// Standard deviation of gust-induced speed disturbance (fraction).
    gust_std: f64,
}

impl MissionSpec {
    /// A survey mission covering `distance_m` meters with no payload.
    #[must_use]
    pub fn survey(distance_m: f64) -> Self {
        Self {
            name: format!("survey-{distance_m}m"),
            distance: Meters::new(distance_m),
            payload_grams: 0.0,
            gust_std: 0.05,
        }
    }

    /// A delivery mission carrying `payload_g` grams over `distance_m`
    /// meters.
    #[must_use]
    pub fn delivery(distance_m: f64, payload_g: f64) -> Self {
        Self {
            name: format!("delivery-{distance_m}m-{payload_g}g"),
            distance: Meters::new(distance_m),
            payload_grams: payload_g,
            gust_std: 0.05,
        }
    }

    /// Overrides the gust disturbance level.
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    #[must_use]
    pub fn with_gusts(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "gust std must be non-negative");
        self.gust_std = std;
        self
    }

    /// Mission name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Course length.
    #[must_use]
    pub fn distance(&self) -> Meters {
        self.distance
    }

    /// Cargo mass in grams.
    #[must_use]
    pub fn payload_grams(&self) -> f64 {
        self.payload_grams
    }

    /// Gust disturbance standard deviation (fraction of commanded speed).
    #[must_use]
    pub fn gust_std(&self) -> f64 {
        self.gust_std
    }
}

/// The outcome of one simulated mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionOutcome {
    /// Whether the full course was covered before the battery died.
    pub completed: bool,
    /// Elapsed mission time (to completion or battery exhaustion).
    pub time: Seconds,
    /// Total energy drawn.
    pub energy: Joules,
    /// Distance actually covered.
    pub distance: Meters,
    /// Average ground speed.
    pub average_speed: MetersPerSecond,
    /// Average propulsion (hover + thrust) power.
    pub propulsion_power: Watts,
    /// Average compute power.
    pub compute_power: Watts,
    /// Number of replanning cycles executed.
    pub replans: u64,
}

impl MissionOutcome {
    /// Energy per meter covered — the mission-level efficiency metric.
    ///
    /// Returns infinity if no distance was covered.
    #[must_use]
    pub fn energy_per_meter(&self) -> f64 {
        if self.distance.value() <= 0.0 {
            return f64::INFINITY;
        }
        self.energy.value() / self.distance.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constructors() {
        let s = MissionSpec::survey(500.0);
        assert_eq!(s.payload_grams(), 0.0);
        assert!(s.name().contains("survey"));
        let d = MissionSpec::delivery(800.0, 250.0);
        assert_eq!(d.payload_grams(), 250.0);
        assert_eq!(d.distance(), Meters::new(800.0));
    }

    #[test]
    fn gust_override() {
        let s = MissionSpec::survey(100.0).with_gusts(0.2);
        assert_eq!(s.gust_std(), 0.2);
    }

    #[test]
    fn energy_per_meter() {
        let o = MissionOutcome {
            completed: true,
            time: Seconds::new(100.0),
            energy: Joules::new(5000.0),
            distance: Meters::new(1000.0),
            average_speed: MetersPerSecond::new(10.0),
            propulsion_power: Watts::new(45.0),
            compute_power: Watts::new(5.0),
            replans: 100,
        };
        assert!((o.energy_per_meter() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_energy_per_meter_is_infinite() {
        let o = MissionOutcome {
            completed: false,
            time: Seconds::ZERO,
            energy: Joules::ZERO,
            distance: Meters::new(0.0),
            average_speed: MetersPerSecond::new(0.0),
            propulsion_power: Watts::ZERO,
            compute_power: Watts::ZERO,
            replans: 0,
        };
        assert!(o.energy_per_meter().is_infinite());
    }
}
