//! A closed-loop point-mass UAV whose mission performance couples to its
//! onboard compute tier — the experiment E5 ("Pump the Brakes") vehicle.
//!
//! Two couplings drive the result, both physical:
//!
//! 1. **Perception-limited speed.** The UAV may only fly as fast as it can
//!    react: `v_safe = sensor_range / (2 · t_react)`, where `t_react` is the
//!    compute tier's planning latency. Weak compute ⇒ slow flight ⇒ long
//!    missions.
//! 2. **Mass- and power-taxed endurance.** The compute board's mass raises
//!    hover power superlinearly, and its electrical draw adds on top. Strong
//!    compute ⇒ heavy, hungry vehicle ⇒ short endurance.
//!
//! Mission energy is therefore U-shaped in compute capability, exactly the
//! shape the paper cites from UAV co-design studies.

use crate::battery::{hover_power, Battery};
use crate::mission::{MissionOutcome, MissionSpec};
use crate::sensor::NoiseSource;
use m7_units::{Grams, Hertz, Joules, Meters, MetersPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Onboard compute tiers, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComputeTier {
    /// Microcontroller-class.
    Micro,
    /// Embedded CPU board.
    Embedded,
    /// Embedded GPU module (Jetson-class).
    EmbeddedGpu,
    /// Small-form-factor desktop with discrete GPU.
    Desktop,
    /// Workstation/server-class board.
    Server,
}

impl ComputeTier {
    /// All tiers, weakest to strongest.
    pub const ALL: [Self; 5] =
        [Self::Micro, Self::Embedded, Self::EmbeddedGpu, Self::Desktop, Self::Server];

    /// Board mass.
    #[must_use]
    pub fn mass(self) -> Grams {
        Grams::new(match self {
            Self::Micro => 15.0,
            Self::Embedded => 60.0,
            Self::EmbeddedGpu => 280.0,
            Self::Desktop => 700.0,
            Self::Server => 1500.0,
        })
    }

    /// Electrical power draw while planning.
    #[must_use]
    pub fn power(self) -> Watts {
        Watts::new(match self {
            Self::Micro => 2.0,
            Self::Embedded => 10.0,
            Self::EmbeddedGpu => 25.0,
            Self::Desktop => 60.0,
            Self::Server => 150.0,
        })
    }

    /// End-to-end perceive-and-plan latency.
    #[must_use]
    pub fn plan_latency(self) -> Seconds {
        Seconds::new(match self {
            Self::Micro => 0.9,
            Self::Embedded => 0.15,
            Self::EmbeddedGpu => 0.03,
            Self::Desktop => 0.015,
            Self::Server => 0.008,
        })
    }

    /// Replanning rate implied by the planning latency.
    #[must_use]
    pub fn plan_rate(self) -> Hertz {
        self.plan_latency().rate()
    }
}

impl core::fmt::Display for ComputeTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Micro => "micro",
            Self::Embedded => "embedded",
            Self::EmbeddedGpu => "embedded-gpu",
            Self::Desktop => "desktop",
            Self::Server => "server",
        };
        f.write_str(s)
    }
}

/// Airframe and payload configuration of the simulated UAV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UavConfig {
    /// Airframe mass excluding compute and cargo.
    pub frame_mass: Grams,
    /// Battery capacity.
    pub battery: Joules,
    /// Total rotor disk area (m²).
    pub rotor_disk_area: f64,
    /// Obstacle sensing range (meters).
    pub sensor_range: Meters,
    /// Mechanical top speed.
    pub max_speed: MetersPerSecond,
    /// Onboard compute tier.
    pub tier: ComputeTier,
}

impl Default for UavConfig {
    fn default() -> Self {
        Self {
            frame_mass: Grams::new(1200.0),
            battery: Joules::from_watt_hours(20.0),
            rotor_disk_area: 0.25,
            sensor_range: Meters::new(12.0),
            max_speed: MetersPerSecond::new(16.0),
            tier: ComputeTier::Embedded,
        }
    }
}

impl UavConfig {
    /// Returns the config with a different compute tier.
    #[must_use]
    pub fn with_tier(mut self, tier: ComputeTier) -> Self {
        self.tier = tier;
        self
    }

    /// Returns the config with a different battery capacity.
    #[must_use]
    pub fn with_battery(mut self, capacity: Joules) -> Self {
        self.battery = capacity;
        self
    }
}

/// The closed-loop UAV simulator.
///
/// # Examples
///
/// ```
/// use m7_sim::mission::MissionSpec;
/// use m7_sim::uav::{ComputeTier, Uav, UavConfig};
///
/// let uav = Uav::new(UavConfig::default().with_tier(ComputeTier::EmbeddedGpu));
/// let outcome = uav.fly(&MissionSpec::survey(1000.0), 7);
/// assert!(outcome.completed);
/// assert!(outcome.average_speed.value() > 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Uav {
    config: UavConfig,
}

impl Uav {
    /// Creates a UAV from its configuration.
    #[must_use]
    pub fn new(config: UavConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &UavConfig {
        &self.config
    }

    /// The perception-limited safe cruise speed for this configuration:
    /// the vehicle must be able to detect and clear an obstacle within half
    /// its sensing range, so reaction latency caps speed.
    #[must_use]
    pub fn safe_speed(&self) -> MetersPerSecond {
        let t_react = self.config.tier.plan_latency();
        let v_limit = self.config.sensor_range.value() / (2.0 * t_react.value());
        MetersPerSecond::new(v_limit).min(self.config.max_speed)
    }

    /// All-up mass for a mission (frame + compute + cargo).
    #[must_use]
    pub fn all_up_mass(&self, mission: &MissionSpec) -> Grams {
        self.config.frame_mass + self.config.tier.mass() + Grams::new(mission.payload_grams())
    }

    /// Flies `mission`, deterministic in `seed`.
    ///
    /// Equivalent to [`Uav::fly_with_faults`] with an empty schedule.
    #[must_use]
    pub fn fly(&self, mission: &MissionSpec, seed: u64) -> MissionOutcome {
        self.fly_with_faults(mission, &crate::faults::FaultSchedule::none(), seed)
    }

    /// Flies `mission` under a fault schedule, deterministic in `seed`.
    ///
    /// Fixed-step closed loop (20 ms): each step the vehicle cruises at its
    /// gust-perturbed safe speed, draws hover plus compute power, and counts
    /// replans at the tier's plan rate. During a sensor dropout the vehicle
    /// creeps blind at 0.3 m/s; during a compute brownout the reaction
    /// latency (and thus the safe speed) degrades by the scheduled factor.
    /// The mission aborts when the battery empties.
    #[must_use]
    pub fn fly_with_faults(
        &self,
        mission: &MissionSpec,
        faults: &crate::faults::FaultSchedule,
        seed: u64,
    ) -> MissionOutcome {
        let dt = Seconds::new(0.02);
        let mass = self.all_up_mass(mission);
        let p_hover = hover_power(mass, self.config.rotor_disk_area);
        let p_compute = self.config.tier.power();
        let mut gusts = NoiseSource::new(mission.gust_std(), seed);

        let mut battery = Battery::new(self.config.battery);
        let mut covered = Meters::new(0.0);
        let mut t = Seconds::ZERO;
        let mut replan_accumulator = 0.0;
        let mut replans = 0u64;
        let plan_rate = self.config.tier.plan_rate();

        // Safety cap so a mis-configured vehicle cannot spin forever.
        let max_steps = 10_000_000usize;
        let mut completed = false;
        for _ in 0..max_steps {
            if covered >= mission.distance() {
                completed = true;
                break;
            }
            // Fault-adjusted commanded speed.
            let v_cmd = if faults.sensor_available(t) {
                let slowdown = faults.compute_slowdown(t);
                let t_react = self.config.tier.plan_latency() * slowdown;
                MetersPerSecond::new(self.config.sensor_range.value() / (2.0 * t_react.value()))
                    .min(self.config.max_speed)
            } else {
                MetersPerSecond::new(0.3) // blind creep
            };
            // Gusts perturb ground speed multiplicatively.
            let v = (v_cmd * (1.0 + gusts.sample())).max(MetersPerSecond::new(0.0));
            let p_total = p_hover + p_compute;
            if !battery.draw(p_total, dt) {
                t += dt;
                break;
            }
            covered += v * dt;
            t += dt;
            replan_accumulator += plan_rate.value() * dt.value();
            while replan_accumulator >= 1.0 {
                replan_accumulator -= 1.0;
                replans += 1;
            }
        }

        let average_speed = if t.value() > 0.0 { covered / t } else { MetersPerSecond::new(0.0) };
        MissionOutcome {
            completed,
            time: t,
            energy: battery.used().min(battery.capacity()),
            distance: covered.min(mission.distance()),
            average_speed,
            propulsion_power: p_hover,
            compute_power: p_compute,
            replans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered() {
        for pair in ComputeTier::ALL.windows(2) {
            assert!(pair[0].mass() < pair[1].mass());
            assert!(pair[0].power() < pair[1].power());
            assert!(pair[0].plan_latency() > pair[1].plan_latency());
        }
    }

    #[test]
    fn weak_compute_limits_speed() {
        let micro = Uav::new(UavConfig::default().with_tier(ComputeTier::Micro));
        let gpu = Uav::new(UavConfig::default().with_tier(ComputeTier::EmbeddedGpu));
        assert!(micro.safe_speed() < gpu.safe_speed());
        // The GPU tier is mechanically limited, not perception limited.
        assert_eq!(gpu.safe_speed(), UavConfig::default().max_speed);
    }

    #[test]
    fn short_survey_completes_on_all_tiers() {
        for tier in ComputeTier::ALL {
            let uav = Uav::new(UavConfig::default().with_tier(tier));
            let out = uav.fly(&MissionSpec::survey(500.0), 1);
            assert!(out.completed, "tier {tier} failed a short survey");
            assert!(out.energy.value() > 0.0);
            assert!(out.replans > 0);
        }
    }

    #[test]
    fn mission_energy_is_u_shaped_in_tier() {
        // Long survey: the embedded tier should beat both extremes.
        let energies: Vec<f64> = ComputeTier::ALL
            .iter()
            .map(|&tier| {
                Uav::new(UavConfig::default().with_tier(tier))
                    .fly(&MissionSpec::survey(3000.0), 5)
                    .energy_per_meter()
            })
            .collect();
        let micro = energies[0];
        let embedded = energies[1];
        let server = energies[4];
        assert!(embedded < micro, "embedded {embedded} should beat micro {micro}");
        assert!(embedded < server, "embedded {embedded} should beat server {server}");
    }

    #[test]
    fn overprovisioned_compute_fails_long_missions() {
        let long = MissionSpec::survey(6000.0);
        let embedded =
            Uav::new(UavConfig::default().with_tier(ComputeTier::Embedded)).fly(&long, 3);
        let server = Uav::new(UavConfig::default().with_tier(ComputeTier::Server)).fly(&long, 3);
        assert!(embedded.completed, "right-sized compute completes");
        assert!(!server.completed, "over-provisioned compute drains the battery");
        assert!(server.distance < long.distance());
    }

    #[test]
    fn payload_raises_energy_per_meter() {
        let uav = Uav::new(UavConfig::default());
        let light = uav.fly(&MissionSpec::survey(1000.0), 2);
        let heavy = uav.fly(&MissionSpec::delivery(1000.0, 800.0), 2);
        assert!(heavy.energy_per_meter() > light.energy_per_meter());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let uav = Uav::new(UavConfig::default());
        let a = uav.fly(&MissionSpec::survey(800.0), 11);
        let b = uav.fly(&MissionSpec::survey(800.0), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn sensor_dropout_slows_the_mission() {
        use crate::faults::{Fault, FaultSchedule};
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(1000.0);
        let nominal = uav.fly(&mission, 1);
        let degraded = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::SensorDropout {
                start: Seconds::new(5.0),
                duration: Seconds::new(20.0),
            }]),
            1,
        );
        assert!(nominal.completed && degraded.completed);
        assert!(
            degraded.time.value() > nominal.time.value() + 15.0,
            "20 s of blind creep costs real time: {} vs {}",
            degraded.time,
            nominal.time
        );
    }

    #[test]
    fn brownout_reduces_safe_speed() {
        use crate::faults::{Fault, FaultSchedule};
        // A tier that is perception-limited even nominally.
        let uav = Uav::new(UavConfig::default().with_tier(ComputeTier::Micro));
        let mission = MissionSpec::survey(500.0).with_gusts(0.0);
        let nominal = uav.fly(&mission, 2);
        let browned = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::ComputeBrownout {
                start: Seconds::ZERO,
                duration: Seconds::new(1e6),
                slowdown: 2.0,
            }]),
            2,
        );
        assert!(browned.time.value() > nominal.time.value() * 1.8, "half the speed, ~2x the time");
    }

    #[test]
    fn long_blind_crawl_can_fail_the_mission() {
        use crate::faults::{Fault, FaultSchedule};
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(3000.0);
        let blinded = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::SensorDropout {
                start: Seconds::ZERO,
                duration: Seconds::new(1e6),
            }]),
            3,
        );
        assert!(!blinded.completed, "creeping blind at 0.3 m/s drains the battery first");
    }

    #[test]
    fn gusts_change_outcome_details_not_success() {
        let uav = Uav::new(UavConfig::default());
        let calm = uav.fly(&MissionSpec::survey(800.0).with_gusts(0.0), 1);
        let windy = uav.fly(&MissionSpec::survey(800.0).with_gusts(0.1), 1);
        assert!(calm.completed && windy.completed);
        assert_ne!(calm.time, windy.time);
    }
}
