//! A closed-loop point-mass UAV whose mission performance couples to its
//! onboard compute tier — the experiment E5 ("Pump the Brakes") vehicle.
//!
//! Two couplings drive the result, both physical:
//!
//! 1. **Perception-limited speed.** The UAV may only fly as fast as it can
//!    react: `v_safe = sensor_range / (2 · t_react)`, where `t_react` is the
//!    compute tier's planning latency. Weak compute ⇒ slow flight ⇒ long
//!    missions.
//! 2. **Mass- and power-taxed endurance.** The compute board's mass raises
//!    hover power superlinearly, and its electrical draw adds on top. Strong
//!    compute ⇒ heavy, hungry vehicle ⇒ short endurance.
//!
//! Mission energy is therefore U-shaped in compute capability, exactly the
//! shape the paper cites from UAV co-design studies.

use crate::battery::{hover_power, Battery};
use crate::degrade::DegradationPolicy;
use crate::faults::FaultSchedule;
use crate::mission::{MissionOutcome, MissionSpec};
use crate::sensor::NoiseSource;
use m7_units::{Grams, Hertz, Joules, Meters, MetersPerSecond, Seconds, Watts};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Blind creep speed when perception is lost and no coast policy applies.
const BLIND_CREEP: f64 = 0.3;
/// Hover time for a full cold reboot of the autonomy stack after a crash.
const COLD_BOOT_S: f64 = 12.0;
/// Probability that one warm-restart attempt revives a crashed stack.
const WARM_RESTART_SUCCESS: f64 = 0.7;
/// Collision hazard per meter flown on stale (stuck-sensor) data.
const STALE_HAZARD_PER_M: f64 = 0.004;
/// Seed salt for the fault-event RNG, kept separate from the gust stream.
const EVENT_SEED_SALT: u64 = 0xDE67_ADE0_5EED_0001;

/// Onboard compute tiers, weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComputeTier {
    /// Microcontroller-class.
    Micro,
    /// Embedded CPU board.
    Embedded,
    /// Embedded GPU module (Jetson-class).
    EmbeddedGpu,
    /// Small-form-factor desktop with discrete GPU.
    Desktop,
    /// Workstation/server-class board.
    Server,
}

impl ComputeTier {
    /// All tiers, weakest to strongest.
    pub const ALL: [Self; 5] =
        [Self::Micro, Self::Embedded, Self::EmbeddedGpu, Self::Desktop, Self::Server];

    /// Board mass.
    #[must_use]
    pub fn mass(self) -> Grams {
        Grams::new(match self {
            Self::Micro => 15.0,
            Self::Embedded => 60.0,
            Self::EmbeddedGpu => 280.0,
            Self::Desktop => 700.0,
            Self::Server => 1500.0,
        })
    }

    /// Electrical power draw while planning.
    #[must_use]
    pub fn power(self) -> Watts {
        Watts::new(match self {
            Self::Micro => 2.0,
            Self::Embedded => 10.0,
            Self::EmbeddedGpu => 25.0,
            Self::Desktop => 60.0,
            Self::Server => 150.0,
        })
    }

    /// End-to-end perceive-and-plan latency.
    #[must_use]
    pub fn plan_latency(self) -> Seconds {
        Seconds::new(match self {
            Self::Micro => 0.9,
            Self::Embedded => 0.15,
            Self::EmbeddedGpu => 0.03,
            Self::Desktop => 0.015,
            Self::Server => 0.008,
        })
    }

    /// Replanning rate implied by the planning latency.
    #[must_use]
    pub fn plan_rate(self) -> Hertz {
        self.plan_latency().rate()
    }
}

impl core::fmt::Display for ComputeTier {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Micro => "micro",
            Self::Embedded => "embedded",
            Self::EmbeddedGpu => "embedded-gpu",
            Self::Desktop => "desktop",
            Self::Server => "server",
        };
        f.write_str(s)
    }
}

/// Airframe and payload configuration of the simulated UAV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UavConfig {
    /// Airframe mass excluding compute and cargo.
    pub frame_mass: Grams,
    /// Battery capacity.
    pub battery: Joules,
    /// Total rotor disk area (m²).
    pub rotor_disk_area: f64,
    /// Obstacle sensing range (meters).
    pub sensor_range: Meters,
    /// Mechanical top speed.
    pub max_speed: MetersPerSecond,
    /// Onboard compute tier.
    pub tier: ComputeTier,
}

impl Default for UavConfig {
    fn default() -> Self {
        Self {
            frame_mass: Grams::new(1200.0),
            battery: Joules::from_watt_hours(20.0),
            rotor_disk_area: 0.25,
            sensor_range: Meters::new(12.0),
            max_speed: MetersPerSecond::new(16.0),
            tier: ComputeTier::Embedded,
        }
    }
}

impl UavConfig {
    /// Returns the config with a different compute tier.
    #[must_use]
    pub fn with_tier(mut self, tier: ComputeTier) -> Self {
        self.tier = tier;
        self
    }

    /// Returns the config with a different battery capacity.
    #[must_use]
    pub fn with_battery(mut self, capacity: Joules) -> Self {
        self.battery = capacity;
        self
    }
}

/// The closed-loop UAV simulator.
///
/// # Examples
///
/// ```
/// use m7_sim::mission::MissionSpec;
/// use m7_sim::uav::{ComputeTier, Uav, UavConfig};
///
/// let uav = Uav::new(UavConfig::default().with_tier(ComputeTier::EmbeddedGpu));
/// let outcome = uav.fly(&MissionSpec::survey(1000.0), 7);
/// assert!(outcome.completed);
/// assert!(outcome.average_speed.value() > 5.0);
/// ```
#[derive(Debug, Clone)]
pub struct Uav {
    config: UavConfig,
}

impl Uav {
    /// Creates a UAV from its configuration.
    #[must_use]
    pub fn new(config: UavConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &UavConfig {
        &self.config
    }

    /// The perception-limited safe cruise speed for this configuration:
    /// the vehicle must be able to detect and clear an obstacle within half
    /// its sensing range, so reaction latency caps speed.
    #[must_use]
    pub fn safe_speed(&self) -> MetersPerSecond {
        let t_react = self.config.tier.plan_latency();
        let v_limit = self.config.sensor_range.value() / (2.0 * t_react.value());
        MetersPerSecond::new(v_limit).min(self.config.max_speed)
    }

    /// All-up mass for a mission (frame + compute + cargo).
    #[must_use]
    pub fn all_up_mass(&self, mission: &MissionSpec) -> Grams {
        self.config.frame_mass + self.config.tier.mass() + Grams::new(mission.payload_grams())
    }

    /// Flies `mission`, deterministic in `seed`.
    ///
    /// Equivalent to [`Uav::fly_with_faults`] with an empty schedule.
    #[must_use]
    pub fn fly(&self, mission: &MissionSpec, seed: u64) -> MissionOutcome {
        self.fly_with_faults(mission, &crate::faults::FaultSchedule::none(), seed)
    }

    /// Flies `mission` under a fault schedule, deterministic in `seed`.
    ///
    /// Fixed-step closed loop (20 ms): each step the vehicle cruises at its
    /// gust-perturbed safe speed, draws hover plus compute power, and counts
    /// replans at the tier's plan rate. During a sensor dropout the vehicle
    /// creeps blind at 0.3 m/s; during a compute brownout the reaction
    /// latency (and thus the safe speed) degrades by the scheduled factor.
    /// The mission aborts when the battery empties.
    #[must_use]
    pub fn fly_with_faults(
        &self,
        mission: &MissionSpec,
        faults: &crate::faults::FaultSchedule,
        seed: u64,
    ) -> MissionOutcome {
        let dt = Seconds::new(0.02);
        let mass = self.all_up_mass(mission);
        let p_hover = hover_power(mass, self.config.rotor_disk_area);
        let p_compute = self.config.tier.power();
        let mut gusts = NoiseSource::new(mission.gust_std(), seed);

        let mut battery = Battery::new(self.config.battery);
        let mut covered = Meters::new(0.0);
        let mut t = Seconds::ZERO;
        let mut replan_accumulator = 0.0;
        let mut replans = 0u64;
        let plan_rate = self.config.tier.plan_rate();

        // Safety cap so a mis-configured vehicle cannot spin forever.
        let max_steps = 10_000_000usize;
        let mut completed = false;
        for _ in 0..max_steps {
            if covered >= mission.distance() {
                completed = true;
                break;
            }
            // Fault-adjusted commanded speed.
            let v_cmd = if faults.sensor_available(t) {
                let slowdown = faults.compute_slowdown(t);
                let t_react = self.config.tier.plan_latency() * slowdown;
                MetersPerSecond::new(self.config.sensor_range.value() / (2.0 * t_react.value()))
                    .min(self.config.max_speed)
            } else {
                MetersPerSecond::new(0.3) // blind creep
            };
            // Gusts perturb ground speed multiplicatively.
            let v = (v_cmd * (1.0 + gusts.sample())).max(MetersPerSecond::new(0.0));
            let p_total = p_hover + p_compute;
            if !battery.draw(p_total, dt) {
                t += dt;
                break;
            }
            covered += v * dt;
            t += dt;
            replan_accumulator += plan_rate.value() * dt.value();
            while replan_accumulator >= 1.0 {
                replan_accumulator -= 1.0;
                replans += 1;
            }
        }

        let average_speed = if t.value() > 0.0 { covered / t } else { MetersPerSecond::new(0.0) };
        MissionOutcome {
            completed,
            time: t,
            energy: battery.used().min(battery.capacity()),
            distance: covered.min(mission.distance()),
            average_speed,
            propulsion_power: p_hover,
            compute_power: p_compute,
            replans,
        }
    }

    /// Flies `mission` under a fault schedule while consulting a
    /// [`DegradationPolicy`], deterministic in `seed`.
    ///
    /// This is the robustness-campaign engine behind experiment E11. On
    /// top of the nominal closed loop it models:
    ///
    /// - **Compute crashes** ([`crate::faults::Fault::ComputeCrash`]): the
    ///   stack dies and the vehicle hovers while it restarts — warm
    ///   retries with backoff if the policy enables them, otherwise a
    ///   full cold boot.
    /// - **Sensor dropouts**: dead-reckoning coast at a fraction of the
    ///   safe speed (bounded by the coast budget) if enabled, else a
    ///   blind creep.
    /// - **Stuck sensors**: a fault-blind vehicle flies stale frames at
    ///   full speed and accrues collision hazard per meter; an aware
    ///   vehicle detects staleness after the watchdog period and coasts.
    /// - **Kernel fallback**: under brownout or battery sag, an aware
    ///   vehicle may swap to a cheaper planner variant (lower latency and
    ///   power, slightly worse effective sensing).
    /// - **Battery sag**: energy is drawn at reduced delivery efficiency.
    /// - **Message drops**: lost inter-stage messages cost retransmits,
    ///   stretching effective reaction latency by `1 / (1 - rate)`.
    /// - **Safe-stop**: when projected energy-to-finish exceeds what is
    ///   left above the reserve, an aware vehicle lands under control
    ///   instead of falling out of the sky later.
    ///
    /// Health monitoring is not free: an aware policy pays
    /// [`DegradationPolicy::monitor_overhead`] on nominal reaction time.
    #[must_use]
    pub fn fly_degraded(
        &self,
        mission: &MissionSpec,
        faults: &FaultSchedule,
        policy: &DegradationPolicy,
        seed: u64,
    ) -> FaultedOutcome {
        let dt = Seconds::new(0.02);
        let mass = self.all_up_mass(mission);
        let p_hover = hover_power(mass, self.config.rotor_disk_area);
        let p_compute = self.config.tier.power();
        let mut gusts = NoiseSource::new(mission.gust_std(), seed);
        // Fault events (restart success, stale-data collisions) draw from
        // their own stream so they never perturb the gust sequence.
        let mut events = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ EVENT_SEED_SALT);

        let mut crash_times: Vec<Seconds> = faults
            .faults()
            .iter()
            .filter_map(|f| match f {
                crate::faults::Fault::ComputeCrash { at } => Some(*at),
                _ => None,
            })
            .collect();
        crash_times.sort_by(|a, b| a.value().partial_cmp(&b.value()).expect("finite crashes"));
        let mut next_crash = 0usize;

        let mut battery = Battery::new(self.config.battery);
        let mut covered = Meters::new(0.0);
        let mut t = Seconds::ZERO;
        let mut replan_accumulator = 0.0;
        let mut replans = 0u64;
        let plan_rate = self.config.tier.plan_rate();
        let overhead = policy.monitor_overhead();

        let mut completed = false;
        let mut crashed = false;
        let mut safe_stopped = false;
        let mut retries = 0u64;
        let mut cold_boots = 0u64;
        let mut coast_time = Seconds::ZERO;
        let mut fallback_time = Seconds::ZERO;
        let mut time_to_failure = None;
        let mut degraded_latencies_s = Vec::new();
        let mut recovering_until = Seconds::ZERO;

        // Nominal cruise plan used for energy projection by safe-stop.
        let v_plan = {
            let t_react = self.config.tier.plan_latency() * overhead;
            MetersPerSecond::new(self.config.sensor_range.value() / (2.0 * t_react.value()))
                .min(self.config.max_speed)
        };

        let max_steps = 10_000_000usize;
        for step in 0..max_steps {
            if covered >= mission.distance() {
                completed = true;
                break;
            }

            // Transient compute crashes ground planning until recovered.
            while next_crash < crash_times.len() && crash_times[next_crash] <= t {
                next_crash += 1;
                let mut downtime = Seconds::ZERO;
                let mut revived = false;
                let mut attempt = 0u32;
                while let Some(cost) = policy.retry_cost(attempt) {
                    downtime += cost;
                    retries += 1;
                    attempt += 1;
                    if events.gen_bool(WARM_RESTART_SUCCESS) {
                        revived = true;
                        break;
                    }
                }
                if !revived {
                    downtime += Seconds::new(COLD_BOOT_S);
                    cold_boots += 1;
                }
                let until = t + downtime;
                recovering_until = recovering_until.max(until);
            }

            // Commanded safe-stop: land now if finishing is no longer
            // energetically credible above the reserve.
            if let Some(ss) = policy.safe_stop {
                let dist_left = (mission.distance() - covered).max(Meters::new(0.0));
                let needed = dist_left.value() / v_plan.value() * (p_hover + p_compute).value();
                let reserve = ss.reserve_fraction * battery.capacity().value();
                if needed > battery.remaining().value() - reserve {
                    safe_stopped = true;
                    break;
                }
            }

            let recovering = t < recovering_until;
            let mut p_compute_eff = p_compute;
            let mut stale_exposure = false;
            let v_cmd = if recovering {
                p_compute_eff = p_compute * 0.2; // stack rebooting, near-idle
                MetersPerSecond::new(0.0)
            } else {
                let slowdown = faults.compute_slowdown(t);
                let sag_eff = faults.battery_efficiency(t);
                let drop_rate = faults.message_drop_rate(t);
                let mut range_eff = Meters::new(
                    (self.config.sensor_range.value() - faults.sensor_bias(t)).max(0.5),
                );
                let mut latency = self.config.tier.plan_latency();
                // Cheaper kernel variant: faster and frugal, slightly
                // worse effective sensing — worth it only under stress.
                if policy.kernel_fallback && (slowdown >= 1.5 || sag_eff < 1.0) {
                    latency *= 0.5;
                    p_compute_eff = p_compute * 0.35;
                    range_eff *= 0.85;
                    fallback_time += dt;
                }
                // Dropped inter-stage messages cost retransmits.
                let retransmit = 1.0 / (1.0 - drop_rate);
                let t_react = latency * slowdown * overhead * retransmit;
                let v_safe = MetersPerSecond::new(range_eff.value() / (2.0 * t_react.value()))
                    .min(self.config.max_speed);
                if step % 25 == 0 && faults.any_active(t) {
                    degraded_latencies_s.push(t_react.value());
                }

                if let Some(since) = faults.dropout_since(t) {
                    match policy.coast {
                        Some(c) if t - since < c.max_duration => {
                            coast_time += dt;
                            v_safe * c.speed_fraction
                        }
                        _ => MetersPerSecond::new(BLIND_CREEP),
                    }
                } else if let Some(since) = faults.stuck_since(t) {
                    match policy.coast {
                        // Watchdog has flagged the stale stream: coast.
                        Some(c) if t - since >= c.detect_after => {
                            if t - since < c.detect_after + c.max_duration {
                                coast_time += dt;
                                v_safe * c.speed_fraction
                            } else {
                                MetersPerSecond::new(BLIND_CREEP)
                            }
                        }
                        // Undetected: full speed on stale frames.
                        _ => {
                            stale_exposure = true;
                            v_safe
                        }
                    }
                } else {
                    v_safe
                }
            };

            let v = (v_cmd * (1.0 + gusts.sample())).max(MetersPerSecond::new(0.0));

            // Flying stale perception risks an obstacle strike.
            if stale_exposure {
                let p_hit = (STALE_HAZARD_PER_M * v.value() * dt.value()).clamp(0.0, 1.0);
                if events.gen_bool(p_hit) {
                    crashed = true;
                    time_to_failure = Some(t);
                    break;
                }
            }

            let sag_eff = faults.battery_efficiency(t);
            let p_total = Watts::new((p_hover + p_compute_eff).value() / sag_eff);
            if !battery.draw(p_total, dt) {
                t += dt;
                crashed = true; // fell out of the sky, pack exhausted
                time_to_failure = Some(t);
                break;
            }
            covered += v * dt;
            t += dt;
            replan_accumulator += plan_rate.value() * dt.value();
            while replan_accumulator >= 1.0 {
                replan_accumulator -= 1.0;
                replans += 1;
            }
        }

        let average_speed = if t.value() > 0.0 { covered / t } else { MetersPerSecond::new(0.0) };
        FaultedOutcome {
            mission: MissionOutcome {
                completed,
                time: t,
                energy: battery.used().min(battery.capacity()),
                distance: covered.min(mission.distance()),
                average_speed,
                propulsion_power: p_hover,
                compute_power: p_compute,
                replans,
            },
            safe_stopped,
            crashed,
            retries,
            cold_boots,
            coast_time,
            fallback_time,
            time_to_failure,
            degraded_latencies_s,
        }
    }
}

/// Outcome of a fault-injected, policy-mediated flight
/// ([`Uav::fly_degraded`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedOutcome {
    /// The usual mission metrics (time, energy, distance, ...).
    pub mission: MissionOutcome,
    /// The vehicle commanded a controlled stop on low projected energy.
    pub safe_stopped: bool,
    /// The vehicle was lost: obstacle strike on stale data, or the pack
    /// died mid-air.
    pub crashed: bool,
    /// Warm-restart attempts spent on compute crashes.
    pub retries: u64,
    /// Full cold reboots after exhausted (or absent) retry budgets.
    pub cold_boots: u64,
    /// Time spent coasting on dead reckoning.
    pub coast_time: Seconds,
    /// Time spent on the fallback kernel variant.
    pub fallback_time: Seconds,
    /// Mission time at which the vehicle was lost, if it was.
    pub time_to_failure: Option<Seconds>,
    /// Sampled effective reaction latencies (s) while any fault was
    /// active — the degraded-mode latency distribution.
    pub degraded_latencies_s: Vec<f64>,
}

impl FaultedOutcome {
    /// Mission success: completed, not lost, not stopped short.
    #[must_use]
    pub fn succeeded(&self) -> bool {
        self.mission.completed && !self.crashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_ordered() {
        for pair in ComputeTier::ALL.windows(2) {
            assert!(pair[0].mass() < pair[1].mass());
            assert!(pair[0].power() < pair[1].power());
            assert!(pair[0].plan_latency() > pair[1].plan_latency());
        }
    }

    #[test]
    fn weak_compute_limits_speed() {
        let micro = Uav::new(UavConfig::default().with_tier(ComputeTier::Micro));
        let gpu = Uav::new(UavConfig::default().with_tier(ComputeTier::EmbeddedGpu));
        assert!(micro.safe_speed() < gpu.safe_speed());
        // The GPU tier is mechanically limited, not perception limited.
        assert_eq!(gpu.safe_speed(), UavConfig::default().max_speed);
    }

    #[test]
    fn short_survey_completes_on_all_tiers() {
        for tier in ComputeTier::ALL {
            let uav = Uav::new(UavConfig::default().with_tier(tier));
            let out = uav.fly(&MissionSpec::survey(500.0), 1);
            assert!(out.completed, "tier {tier} failed a short survey");
            assert!(out.energy.value() > 0.0);
            assert!(out.replans > 0);
        }
    }

    #[test]
    fn mission_energy_is_u_shaped_in_tier() {
        // Long survey: the embedded tier should beat both extremes.
        let energies: Vec<f64> = ComputeTier::ALL
            .iter()
            .map(|&tier| {
                Uav::new(UavConfig::default().with_tier(tier))
                    .fly(&MissionSpec::survey(3000.0), 5)
                    .energy_per_meter()
            })
            .collect();
        let micro = energies[0];
        let embedded = energies[1];
        let server = energies[4];
        assert!(embedded < micro, "embedded {embedded} should beat micro {micro}");
        assert!(embedded < server, "embedded {embedded} should beat server {server}");
    }

    #[test]
    fn overprovisioned_compute_fails_long_missions() {
        let long = MissionSpec::survey(6000.0);
        let embedded =
            Uav::new(UavConfig::default().with_tier(ComputeTier::Embedded)).fly(&long, 3);
        let server = Uav::new(UavConfig::default().with_tier(ComputeTier::Server)).fly(&long, 3);
        assert!(embedded.completed, "right-sized compute completes");
        assert!(!server.completed, "over-provisioned compute drains the battery");
        assert!(server.distance < long.distance());
    }

    #[test]
    fn payload_raises_energy_per_meter() {
        let uav = Uav::new(UavConfig::default());
        let light = uav.fly(&MissionSpec::survey(1000.0), 2);
        let heavy = uav.fly(&MissionSpec::delivery(1000.0, 800.0), 2);
        assert!(heavy.energy_per_meter() > light.energy_per_meter());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let uav = Uav::new(UavConfig::default());
        let a = uav.fly(&MissionSpec::survey(800.0), 11);
        let b = uav.fly(&MissionSpec::survey(800.0), 11);
        assert_eq!(a, b);
    }

    #[test]
    fn sensor_dropout_slows_the_mission() {
        use crate::faults::{Fault, FaultSchedule};
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(1000.0);
        let nominal = uav.fly(&mission, 1);
        let degraded = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::SensorDropout {
                start: Seconds::new(5.0),
                duration: Seconds::new(20.0),
            }]),
            1,
        );
        assert!(nominal.completed && degraded.completed);
        assert!(
            degraded.time.value() > nominal.time.value() + 15.0,
            "20 s of blind creep costs real time: {} vs {}",
            degraded.time,
            nominal.time
        );
    }

    #[test]
    fn brownout_reduces_safe_speed() {
        use crate::faults::{Fault, FaultSchedule};
        // A tier that is perception-limited even nominally.
        let uav = Uav::new(UavConfig::default().with_tier(ComputeTier::Micro));
        let mission = MissionSpec::survey(500.0).with_gusts(0.0);
        let nominal = uav.fly(&mission, 2);
        let browned = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::ComputeBrownout {
                start: Seconds::ZERO,
                duration: Seconds::new(1e6),
                slowdown: 2.0,
            }]),
            2,
        );
        assert!(browned.time.value() > nominal.time.value() * 1.8, "half the speed, ~2x the time");
    }

    #[test]
    fn long_blind_crawl_can_fail_the_mission() {
        use crate::faults::{Fault, FaultSchedule};
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(3000.0);
        let blinded = uav.fly_with_faults(
            &mission,
            &FaultSchedule::new(vec![Fault::SensorDropout {
                start: Seconds::ZERO,
                duration: Seconds::new(1e6),
            }]),
            3,
        );
        assert!(!blinded.completed, "creeping blind at 0.3 m/s drains the battery first");
    }

    #[test]
    fn degraded_engine_matches_nominal_when_blind_and_faultless() {
        // With an empty schedule and the blind policy, every fault factor
        // multiplies by exactly 1.0, so the degraded engine must replay
        // the legacy loop bit for bit.
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(800.0);
        let legacy = uav.fly(&mission, 11);
        let degraded =
            uav.fly_degraded(&mission, &FaultSchedule::none(), &DegradationPolicy::none(), 11);
        assert_eq!(degraded.mission, legacy);
        assert!(degraded.succeeded());
        assert!(!degraded.crashed && !degraded.safe_stopped);
        assert_eq!(degraded.retries, 0);
        assert!(degraded.degraded_latencies_s.is_empty());
    }

    #[test]
    fn awareness_taxes_the_nominal_mission() {
        // On a perception-limited vehicle the 5% monitor overhead shows
        // up as a slightly slower fault-free mission.
        let mut cfg = UavConfig::default().with_tier(ComputeTier::Micro);
        cfg.sensor_range = Meters::new(4.0);
        let uav = Uav::new(cfg);
        let mission = MissionSpec::survey(300.0).with_gusts(0.0);
        let blind =
            uav.fly_degraded(&mission, &FaultSchedule::none(), &DegradationPolicy::none(), 1);
        let aware =
            uav.fly_degraded(&mission, &FaultSchedule::none(), &DegradationPolicy::full(), 1);
        assert!(blind.succeeded() && aware.succeeded());
        assert!(
            aware.mission.time.value() > blind.mission.time.value() * 1.02,
            "monitoring overhead must cost time: {} vs {}",
            aware.mission.time,
            blind.mission.time
        );
    }

    #[test]
    fn coast_outruns_blind_creep_through_a_dropout() {
        use crate::faults::Fault;
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(600.0).with_gusts(0.0);
        let schedule = FaultSchedule::new(vec![Fault::SensorDropout {
            start: Seconds::new(5.0),
            duration: Seconds::new(3.0),
        }]);
        let blind = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::none(), 4);
        let aware = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), 4);
        assert!(aware.coast_time.value() > 2.0, "coast should cover the outage");
        assert_eq!(blind.coast_time, Seconds::ZERO);
        assert!(
            aware.mission.time < blind.mission.time,
            "coasting finishes sooner than creeping: {} vs {}",
            aware.mission.time,
            blind.mission.time
        );
    }

    #[test]
    fn stale_sensor_is_deadly_only_when_undetected() {
        use crate::faults::Fault;
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(2000.0).with_gusts(0.0);
        // A long stuck episode: the blind vehicle flies ~hundreds of
        // meters on stale frames; the aware one detects within 0.5 s.
        let schedule = FaultSchedule::new(vec![Fault::SensorStuck {
            start: Seconds::new(10.0),
            duration: Seconds::new(60.0),
        }]);
        let mut blind_crashes = 0;
        let mut aware_crashes = 0;
        for seed in 0..20 {
            if uav.fly_degraded(&mission, &schedule, &DegradationPolicy::none(), seed).crashed {
                blind_crashes += 1;
            }
            if uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), seed).crashed {
                aware_crashes += 1;
            }
        }
        assert!(
            blind_crashes > aware_crashes,
            "stale-data exposure must cost the blind design: {blind_crashes} vs {aware_crashes}"
        );
    }

    #[test]
    fn safe_stop_prevents_midair_battery_death() {
        use crate::faults::Fault;
        // A battery too small for the mission plus a deep sag: the blind
        // vehicle falls out of the sky; the aware one lands on purpose.
        let cfg = UavConfig::default().with_battery(Joules::from_watt_hours(4.0));
        let uav = Uav::new(cfg);
        let mission = MissionSpec::survey(4000.0).with_gusts(0.0);
        let schedule = FaultSchedule::new(vec![Fault::BatterySag {
            start: Seconds::ZERO,
            duration: Seconds::new(1e6),
            efficiency: 0.6,
        }]);
        let blind = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::none(), 5);
        let aware = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), 5);
        assert!(blind.crashed, "blind design drains the pack mid-air");
        assert!(blind.time_to_failure.is_some());
        assert!(aware.safe_stopped, "aware design lands under control");
        assert!(!aware.crashed);
    }

    #[test]
    fn retries_recover_faster_than_cold_boots() {
        use crate::faults::Fault;
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(500.0).with_gusts(0.0);
        let schedule = FaultSchedule::new(vec![
            Fault::ComputeCrash { at: Seconds::new(5.0) },
            Fault::ComputeCrash { at: Seconds::new(15.0) },
        ]);
        let blind = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::none(), 6);
        let aware = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), 6);
        assert_eq!(blind.cold_boots, 2, "no retry budget: every crash is a cold boot");
        assert_eq!(blind.retries, 0);
        assert!(aware.retries >= 2, "aware design attempts warm restarts");
        assert!(
            aware.mission.time < blind.mission.time,
            "warm restarts beat cold boots: {} vs {}",
            aware.mission.time,
            blind.mission.time
        );
    }

    #[test]
    fn degraded_flight_is_deterministic() {
        let uav = Uav::new(UavConfig::default());
        let mission = MissionSpec::survey(700.0);
        let schedule =
            FaultSchedule::sample(&crate::faults::FaultProfile::harsh(), Seconds::new(300.0), 9);
        let a = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), 9);
        let b = uav.fly_degraded(&mission, &schedule, &DegradationPolicy::full(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn gusts_change_outcome_details_not_success() {
        let uav = Uav::new(UavConfig::default());
        let calm = uav.fly(&MissionSpec::survey(800.0).with_gusts(0.0), 1);
        let windy = uav.fly(&MissionSpec::survey(800.0).with_gusts(0.1), 1);
        assert!(calm.completed && windy.completed);
        assert_ne!(calm.time, windy.time);
    }
}
