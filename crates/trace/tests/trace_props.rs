//! Property tests for the tracing layer: histogram bucket laws, exact
//! count/sum conservation, and span-nesting well-formedness of the
//! flight recorder's event stream.

use m7_trace::recorder::EventKind;
use m7_trace::{span_dyn, Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes tests that touch the global enable flag / recorder.
static GLOBAL: Mutex<()> = Mutex::new(());

proptest! {
    /// Bucket lower bounds are strictly increasing and every value lands
    /// in the bucket whose range contains it.
    #[test]
    fn bucket_index_respects_bucket_bounds(v in 0u64..=u64::MAX) {
        let i = Histogram::bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(v >= Histogram::bucket_lower_bound(i));
        if i + 1 < HISTOGRAM_BUCKETS {
            prop_assert!(v < Histogram::bucket_lower_bound(i + 1));
        }
    }

    /// Recording any multiset of values conserves the exact count and
    /// sum, and the per-bucket counts add back up to the total.
    #[test]
    fn histogram_conserves_count_and_sum(values in prop::collection::vec(0u64..=u64::MAX, 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let want_sum = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(h.sum(), want_sum);
        let snap = h.snapshot();
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, h.count());
        // Snapshot mirrors the live histogram.
        prop_assert_eq!(snap.count, h.count());
        prop_assert_eq!(snap.sum, h.sum());
        prop_assert_eq!(snap.mean(), h.mean());
    }

    /// The quantile upper bound is monotone in `p` and an actual upper
    /// bound for every recorded value at `p = 1`.
    #[test]
    fn quantile_upper_bound_is_monotone_and_bounds_max(
        values in prop::collection::vec(0u64..1 << 48, 1..100),
        ps in prop::collection::vec(0.0f64..=1.0, 2..6),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = ps.clone();
        sorted.sort_by(f64::total_cmp);
        let qs: Vec<u64> = sorted.iter().map(|&p| h.quantile_upper_bound(p)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile bound must be monotone in p: {qs:?}");
        }
        let max = *values.iter().max().expect("nonempty");
        prop_assert!(h.quantile_upper_bound(1.0) >= max);
    }

    /// Any randomly generated nesting of spans produces a well-formed
    /// event stream: per-thread Begin/End events follow stack
    /// discipline with matching names, and timestamps never go
    /// backwards in sequence order.
    #[test]
    fn random_span_nesting_is_well_formed(depths in prop::collection::vec(0usize..4, 1..12)) {
        let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        m7_trace::enable();
        m7_trace::reset();

        const NAMES: [&str; 4] = ["prop.a", "prop.b", "prop.c", "prop.d"];
        // Interpret each entry as "open a span of this name, nested one
        // level deeper than the previous when possible".
        fn nest(depths: &[usize]) {
            let Some((&d, rest)) = depths.split_first() else { return };
            let _g = span_dyn(NAMES[d]);
            nest(rest);
        }
        nest(&depths);

        let drained = m7_trace::recorder::drain();
        m7_trace::disable();

        let mut stack: Vec<&str> = Vec::new();
        let mut last_ts = 0u64;
        for e in &drained.events {
            prop_assert_eq!(e.tid, 0, "single-threaded test records on one buffer");
            match e.kind {
                EventKind::Begin => stack.push(e.name),
                EventKind::End => {
                    let open = stack.pop();
                    prop_assert_eq!(open, Some(e.name), "End must close the innermost Begin");
                }
                _ => {}
            }
            prop_assert!(e.ts_ns >= last_ts, "wall timestamps are monotone per thread");
            last_ts = e.ts_ns;
        }
        prop_assert!(stack.is_empty(), "every Begin is closed: {stack:?}");
        prop_assert_eq!(drained.events.len(), depths.len() * 2);
    }
}
