//! Typed metrics — counters, gauges, and fixed log-bucket histograms —
//! plus the global registry that names them.
//!
//! Two layers:
//!
//! - The **raw types** ([`Counter`], [`Gauge`], [`Histogram`]) always
//!   count. They are plain atomic cells usable as struct fields (the
//!   `m7-serve` cache keeps its exact per-instance telemetry in
//!   [`Counter`]s) with no global state and no enable gate.
//! - The **trace handles** ([`TraceCounter`], [`TraceGauge`],
//!   [`TraceHistogram`]) are `const`-constructible statics that register
//!   themselves in the global [`Registry`] on first touch and do
//!   *nothing* while tracing is disabled — the disabled path is one
//!   relaxed atomic load and a predictable branch.
//!
//! Every registered metric carries a [`MetricClass`]:
//! [`MetricClass::Deterministic`] metrics depend only on the work
//! performed (so their aggregate values are identical at any thread
//! count for the same seeds), while [`MetricClass::Diagnostic`] metrics
//! (`sched.*`, wall-clock latencies, queue depths) depend on scheduling
//! and are excluded from determinism comparisons via
//! [`MetricsSnapshot::deterministic_only`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Whether a metric's aggregate value is a pure function of the work
/// performed (thread-count invariant) or of how it was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricClass {
    /// Value depends only on inputs and seeds — identical at
    /// `M7_THREADS=1` and `M7_THREADS=8` for the same run.
    Deterministic,
    /// Value depends on scheduling, wall-clock time, or load (steal
    /// counts, queue waits, latency histograms). Excluded from
    /// determinism checks.
    Diagnostic,
}

/// An exact, always-on, lock-free event counter.
///
/// # Examples
///
/// ```
/// let c = m7_trace::Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value gauge with a monotone-max variant.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A fixed log₂-bucket histogram with exact count and sum.
///
/// Bucket 0 holds zeros; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. Bucket bounds are monotone, recording is lock-free,
/// and the per-bucket counts conserve the total: the sum of all bucket
/// counts always equals [`Histogram::count`].
///
/// # Examples
///
/// ```
/// let h = m7_trace::Histogram::new();
/// for v in [0, 1, 3, 200] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 204);
/// assert_eq!(h.bucket_count(0), 1); // the zero
/// assert_eq!(h.bucket_count(m7_trace::Histogram::bucket_index(200)), 1);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: 0 for zero, else `floor(log2(v)) + 1`.
    #[inline]
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The smallest value landing in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_lower_bound(i: usize) -> u64 {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of observations (wrapping beyond `u64::MAX`).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 for an empty histogram.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Observations in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// An upper bound on the `p`-quantile (`p` in `[0, 1]`): the upper
    /// edge of the bucket containing that rank.
    #[must_use]
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((n as f64 * p.clamp(0.0, 1.0)).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.bucket_count(i);
            if seen >= rank {
                return if i + 1 < HISTOGRAM_BUCKETS {
                    Self::bucket_lower_bound(i + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }

    /// Clears all buckets, the count, and the sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's nonzero buckets.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.bucket_count(i);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot { count: self.count(), sum: self.sum(), buckets }
    }
}

/// Point-in-time histogram contents: `(bucket index, count)` for every
/// nonzero bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Nonzero buckets as `(index, count)`, in index order.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 for an empty snapshot.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-quantile (`p` in `[0, 1]`): the upper
    /// edge of the bucket containing that rank.
    #[must_use]
    pub fn quantile_upper_bound(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64 * p.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if i + 1 < HISTOGRAM_BUCKETS {
                    Histogram::bucket_lower_bound(i + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
            }
        }
        u64::MAX
    }
}

/// A registered metric's current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last/maximum value.
    Gauge(u64),
    /// A histogram's buckets, count, and sum.
    Histogram(HistogramSnapshot),
}

/// One named metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricEntry {
    /// Registered name (dot-separated, e.g. `par.items`).
    pub name: String,
    /// Determinism class.
    pub class: MetricClass,
    /// Current value.
    pub value: MetricValue,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// All entries, sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Keeps only [`MetricClass::Deterministic`] metrics — the subset
    /// whose values must be identical across thread counts.
    #[must_use]
    pub fn deterministic_only(self) -> Self {
        Self {
            entries: self
                .entries
                .into_iter()
                .filter(|e| e.class == MetricClass::Deterministic)
                .collect(),
        }
    }

    /// Looks up an entry by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The value of a counter metric, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The contents of a histogram metric, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match &self.get(name)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct RegistryInner {
    by_name: HashMap<&'static str, usize>,
    entries: Vec<(&'static str, MetricClass, Metric)>,
}

/// The global metric registry: interns metrics by name and hands out
/// `&'static` handles.
///
/// Metric storage is leaked on first registration, so handles stay valid
/// forever; [`Registry::reset`] zeroes values without unregistering.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner.lock().expect("metric registry poisoned")
    }

    fn intern<T>(
        &self,
        name: &str,
        class: MetricClass,
        make: impl FnOnce() -> &'static T,
        as_metric: impl Fn(&'static T) -> Metric,
        get: impl Fn(&Metric) -> Option<&'static T>,
    ) -> &'static T {
        let mut inner = self.lock();
        if let Some(&i) = inner.by_name.get(name) {
            return get(&inner.entries[i].2).unwrap_or_else(|| {
                panic!("metric {name:?} already registered with a different type")
            });
        }
        let leaked_name: &'static str = Box::leak(name.to_string().into_boxed_str());
        let handle = make();
        let index = inner.entries.len();
        inner.by_name.insert(leaked_name, index);
        inner.entries.push((leaked_name, class, as_metric(handle)));
        handle
    }

    /// Returns (registering on first use) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str, class: MetricClass) -> &'static Counter {
        self.intern(
            name,
            class,
            || Box::leak(Box::new(Counter::new())),
            Metric::Counter,
            |m| if let Metric::Counter(c) = m { Some(c) } else { None },
        )
    }

    /// Returns (registering on first use) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str, class: MetricClass) -> &'static Gauge {
        self.intern(
            name,
            class,
            || Box::leak(Box::new(Gauge::new())),
            Metric::Gauge,
            |m| if let Metric::Gauge(g) = m { Some(g) } else { None },
        )
    }

    /// Returns (registering on first use) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str, class: MetricClass) -> &'static Histogram {
        self.intern(
            name,
            class,
            || Box::leak(Box::new(Histogram::new())),
            Metric::Histogram,
            |m| if let Metric::Histogram(h) = m { Some(h) } else { None },
        )
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut entries: Vec<MetricEntry> = inner
            .entries
            .iter()
            .map(|(name, class, metric)| MetricEntry {
                name: (*name).to_string(),
                class: *class,
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { entries }
    }

    /// Zeroes every registered metric, keeping registrations (and every
    /// handed-out `&'static` handle) valid.
    pub fn reset(&self) {
        let inner = self.lock();
        for (_, _, metric) in &inner.entries {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// The process-wide metric registry.
#[must_use]
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner { by_name: HashMap::new(), entries: Vec::new() }),
    })
}

/// A `const`-constructible counter handle that registers itself on first
/// touch and is a no-op while tracing is disabled.
///
/// # Examples
///
/// ```
/// use m7_trace::{MetricClass, TraceCounter};
///
/// static REQUESTS: TraceCounter = TraceCounter::new("doc.requests", MetricClass::Deterministic);
/// REQUESTS.incr(); // no-op: tracing is off by default
/// m7_trace::enable();
/// REQUESTS.add(2);
/// assert_eq!(REQUESTS.get(), 2);
/// ```
pub struct TraceCounter {
    name: &'static str,
    class: MetricClass,
    cell: OnceLock<&'static Counter>,
}

impl TraceCounter {
    /// Declares a counter named `name` (registered lazily).
    #[must_use]
    pub const fn new(name: &'static str, class: MetricClass) -> Self {
        Self { name, class, cell: OnceLock::new() }
    }

    fn handle(&self) -> &'static Counter {
        self.cell.get_or_init(|| registry().counter(self.name, self.class))
    }

    /// Adds `n` when tracing is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.handle().add(n);
        }
    }

    /// Adds one when tracing is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The registered counter's current value (0 if never touched).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.get().map_or(0, |c| c.get())
    }
}

/// A `const`-constructible gauge handle; no-op while tracing is
/// disabled. See [`TraceCounter`].
pub struct TraceGauge {
    name: &'static str,
    class: MetricClass,
    cell: OnceLock<&'static Gauge>,
}

impl TraceGauge {
    /// Declares a gauge named `name` (registered lazily).
    #[must_use]
    pub const fn new(name: &'static str, class: MetricClass) -> Self {
        Self { name, class, cell: OnceLock::new() }
    }

    fn handle(&self) -> &'static Gauge {
        self.cell.get_or_init(|| registry().gauge(self.name, self.class))
    }

    /// Stores `v` when tracing is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::enabled() {
            self.handle().set(v);
        }
    }

    /// Raises the gauge to `v` when tracing is enabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if crate::enabled() {
            self.handle().record_max(v);
        }
    }

    /// The registered gauge's current value (0 if never touched).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.get().map_or(0, |g| g.get())
    }
}

/// A `const`-constructible histogram handle; no-op while tracing is
/// disabled. See [`TraceCounter`].
pub struct TraceHistogram {
    name: &'static str,
    class: MetricClass,
    cell: OnceLock<&'static Histogram>,
}

impl TraceHistogram {
    /// Declares a histogram named `name` (registered lazily).
    #[must_use]
    pub const fn new(name: &'static str, class: MetricClass) -> Self {
        Self { name, class, cell: OnceLock::new() }
    }

    fn handle(&self) -> &'static Histogram {
        self.cell.get_or_init(|| registry().histogram(self.name, self.class))
    }

    /// Records `v` when tracing is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.handle().record(v);
        }
    }

    /// The registered histogram's observation count (0 if never touched).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.cell.get().map_or(0, |h| h.count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = Gauge::new();
        g.set(7);
        g.record_max(3);
        assert_eq!(g.get(), 7);
        g.record_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(1), 1);
        assert_eq!(Histogram::bucket_lower_bound(64), 1 << 63);
    }

    #[test]
    fn histogram_conserves_counts() {
        let h = Histogram::new();
        let values = [0u64, 1, 1, 5, 1000, u64::MAX];
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        let bucket_total: u64 = (0..HISTOGRAM_BUCKETS).map(|i| h.bucket_count(i)).sum();
        assert_eq!(bucket_total, h.count());
        assert_eq!(h.sum(), values.iter().copied().fold(0u64, u64::wrapping_add));
    }

    #[test]
    fn quantile_bounds_are_ordered() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper_bound(0.5);
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p50 <= p99);
        assert!(p99 >= 990);
        assert_eq!(Histogram::new().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn snapshot_lists_nonzero_buckets_in_order() {
        let h = Histogram::new();
        h.record(0);
        h.record(300);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets.len(), 2);
        assert_eq!(s.buckets[0], (0, 1));
        assert_eq!(s.buckets[1], (Histogram::bucket_index(300), 1));
    }
}
