//! The live telemetry hub: a background sampler that turns the metric
//! registry into a stream of [`Snapshot`]/[`SnapshotDelta`] records.
//!
//! [`TelemetryHub::start`] spawns one thread that, on a configurable
//! cadence, captures the registry, computes the delta against the
//! previous sample, and — only if something changed — publishes to every
//! attached [`SnapshotSink`] (the on-disk flight journal in `m7-serve`,
//! or anything else implementing the trait). The latest snapshot is
//! always queryable in-process via [`TelemetryHub::latest`].
//!
//! Sampling is strictly read-only over the registry's atomics: it never
//! touches modeled clocks, seeds, or any simulation state, so golden
//! reports are byte-identical with the hub running at any cadence
//! (guarded by `tests/golden_reports.rs`).
//!
//! Sequence numbers are contiguous from 0 (the baseline full snapshot);
//! quiet intervals publish nothing and do not consume a sequence
//! number, which is what lets a journal reader replay `0..n` and know
//! the first gap is the end of the acked prefix.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::snapshot::{Snapshot, SnapshotDelta};

/// A consumer of the hub's snapshot stream.
///
/// `delta` is `None` exactly once, for the seq-0 baseline; afterwards it
/// carries the changes that turn the previous published snapshot into
/// `snapshot`. Sinks run on the hub thread — keep `publish` cheap or
/// buffer internally.
pub trait SnapshotSink: Send {
    /// Consumes one published snapshot.
    fn publish(&mut self, snapshot: &Snapshot, delta: Option<&SnapshotDelta>);
}

/// Hub cadence configuration.
#[derive(Debug, Clone)]
pub struct HubConfig {
    /// Sampling interval. Sub-millisecond cadences are honored; the
    /// stop flag is still checked at least every 50 ms.
    pub interval: Duration,
}

impl Default for HubConfig {
    fn default() -> Self {
        Self { interval: Duration::from_millis(250) }
    }
}

struct HubShared {
    stop: AtomicBool,
    published: AtomicU64,
    latest: Mutex<Option<Snapshot>>,
}

/// Handle to the background sampler. Dropping it stops the thread after
/// one final sample, so the last pre-shutdown state always reaches the
/// sinks.
pub struct TelemetryHub {
    shared: Arc<HubShared>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryHub {
    /// Starts sampling into `sinks`. Enables tracing (the gated metrics
    /// must count for there to be anything to sample) — a no-op if it
    /// was already on.
    #[must_use]
    pub fn start(config: HubConfig, sinks: Vec<Box<dyn SnapshotSink>>) -> Self {
        crate::enable();
        let shared = Arc::new(HubShared {
            stop: AtomicBool::new(false),
            published: AtomicU64::new(0),
            latest: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("m7-telemetry-hub".into())
            .spawn(move || run(&worker, config.interval, sinks))
            .expect("spawn telemetry hub thread");
        Self { shared, thread: Some(thread) }
    }

    /// The most recently published snapshot, if any interval has had
    /// activity yet.
    #[must_use]
    pub fn latest(&self) -> Option<Snapshot> {
        self.shared.latest.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// How many records (baseline + non-empty deltas) have been
    /// published to the sinks so far.
    #[must_use]
    pub fn snapshots_published(&self) -> u64 {
        self.shared.published.load(Ordering::Acquire)
    }

    /// Stops the sampler: takes one final sample, flushes it to the
    /// sinks, and joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn run(shared: &HubShared, interval: Duration, mut sinks: Vec<Box<dyn SnapshotSink>>) {
    let started = Instant::now();
    let mut prev: Option<Snapshot> = None;
    loop {
        let stopping = shared.stop.load(Ordering::Acquire);
        let wall_ms = started.elapsed().as_millis() as u64;
        // `latest` and the published count are updated *before* the
        // sinks run: anyone woken by a sink (a test on a channel, a
        // process tailing the journal) must already see this record
        // reflected in `latest()`.
        match &prev {
            None => {
                // Baseline: a full snapshot at seq 0, published even if
                // the registry is empty so recovery always has an anchor.
                let snap = Snapshot::capture(0, wall_ms);
                *shared.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap.clone());
                shared.published.fetch_add(1, Ordering::AcqRel);
                for sink in &mut sinks {
                    sink.publish(&snap, None);
                }
                prev = Some(snap);
            }
            Some(last) => {
                let snap = Snapshot::capture(last.seq + 1, wall_ms);
                let delta = snap.delta_from(last);
                if !delta.is_empty() {
                    *shared.latest.lock().unwrap_or_else(|e| e.into_inner()) = Some(snap.clone());
                    shared.published.fetch_add(1, Ordering::AcqRel);
                    for sink in &mut sinks {
                        sink.publish(&snap, Some(&delta));
                    }
                    prev = Some(snap);
                }
            }
        }
        if stopping {
            return;
        }
        // Park in bounded slices so stop() never waits a full interval.
        let deadline = Instant::now() + interval;
        while !shared.stop.load(Ordering::Acquire) {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::park_timeout((deadline - now).min(Duration::from_millis(50)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricClass;
    use crate::TraceCounter;
    use std::sync::mpsc;

    static HUB_TEST_TICKS: TraceCounter =
        TraceCounter::new("hubtest.ticks", MetricClass::Diagnostic);

    struct ChannelSink(mpsc::Sender<(u64, bool)>);

    impl SnapshotSink for ChannelSink {
        fn publish(&mut self, snapshot: &Snapshot, delta: Option<&SnapshotDelta>) {
            let _ = self.0.send((snapshot.seq, delta.is_some()));
        }
    }

    #[test]
    fn publishes_baseline_then_deltas_and_skips_quiet_intervals() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        let (tx, rx) = mpsc::channel();
        let hub = TelemetryHub::start(
            HubConfig { interval: Duration::from_millis(5) },
            vec![Box::new(ChannelSink(tx))],
        );

        let (seq0, had_delta) = rx.recv_timeout(Duration::from_secs(5)).expect("baseline");
        assert_eq!(seq0, 0);
        assert!(!had_delta, "the baseline must be a full record");

        HUB_TEST_TICKS.incr();
        // Other registry traffic may interleave; drain deltas until ours
        // shows up, checking contiguity along the way.
        let mut expected = seq0 + 1;
        loop {
            let (seq, had_delta) = rx.recv_timeout(Duration::from_secs(5)).expect("a delta");
            assert!(had_delta, "subsequent records must be deltas");
            assert_eq!(seq, expected, "sequence numbers are contiguous");
            expected += 1;
            let latest = hub.latest().expect("latest snapshot");
            if latest.metrics.counter("hubtest.ticks").unwrap_or(0) >= 1 {
                break;
            }
        }
        let published = hub.snapshots_published();
        assert!(published >= 2);
        hub.stop();
        crate::disable();
    }
}
