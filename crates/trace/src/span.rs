//! Hierarchical spans: RAII wall-clock regions, deterministic
//! modeled-time regions, and zero-duration instants.
//!
//! A [`SpanSite`] is a `const`-constructible static naming one
//! instrumentation point. Entering it yields a [`SpanGuard`] that
//! records a begin event immediately and the matching end event on drop;
//! nesting guards nests spans. Every site also maintains two registry
//! metrics automatically:
//!
//! - `<name>.spans` — a counter of completed spans, classed with the
//!   site (deterministic sites therefore contribute to the
//!   thread-invariance guarantee), and
//! - `<name>.wall_ns` / `<name>.modeled_ns` — a duration histogram.
//!   Wall histograms are always [`MetricClass::Diagnostic`] (host timing
//!   is never deterministic); modeled histograms carry the site's class.
//!
//! Everything is a no-op while [`crate::enabled`] is false.

use crate::metrics::MetricClass;
use crate::recorder::{self, Clock, EventKind};
use std::sync::OnceLock;

struct SiteState {
    name_id: u32,
    spans: &'static crate::Counter,
    wall_ns: &'static crate::Histogram,
    modeled_ns: &'static crate::Histogram,
}

/// One named instrumentation point; declare as a `static`.
///
/// # Examples
///
/// ```
/// use m7_trace::{span::SpanSite, MetricClass};
///
/// static DECODE: SpanSite = SpanSite::new("doc.decode", MetricClass::Deterministic);
///
/// m7_trace::enable();
/// {
///     let _span = DECODE.enter(); // wall-clock span until end of scope
/// }
/// DECODE.complete_modeled(0, 1_500); // modeled-time span: 1.5 µs at t=0
/// ```
pub struct SpanSite {
    name: &'static str,
    class: MetricClass,
    state: OnceLock<SiteState>,
}

impl SpanSite {
    /// Declares a span site named `name`.
    ///
    /// `class` describes the site's *modeled* side-metrics: pass
    /// [`MetricClass::Deterministic`] when the number of times this site
    /// fires (and any modeled durations) depend only on inputs and
    /// seeds, [`MetricClass::Diagnostic`] otherwise.
    #[must_use]
    pub const fn new(name: &'static str, class: MetricClass) -> Self {
        Self { name, class, state: OnceLock::new() }
    }

    /// The site's name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    fn state(&self) -> &SiteState {
        self.state.get_or_init(|| {
            let reg = crate::registry();
            SiteState {
                name_id: recorder::intern(self.name),
                spans: reg.counter(&format!("{}.spans", self.name), self.class),
                wall_ns: reg.histogram(&format!("{}.wall_ns", self.name), MetricClass::Diagnostic),
                modeled_ns: reg.histogram(&format!("{}.modeled_ns", self.name), self.class),
            }
        })
    }

    /// Opens a wall-clock span that closes when the guard drops.
    /// Returns an inert guard while tracing is disabled.
    #[inline]
    #[must_use]
    pub fn enter(&'static self) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { site: None, start_ns: 0 };
        }
        let state = self.state();
        let start_ns = recorder::wall_ns();
        recorder::record(state.name_id, EventKind::Begin, Clock::Wall, start_ns, 0);
        SpanGuard { site: Some(self), start_ns }
    }

    /// Records a complete span on the **modeled** timeline: the platform
    /// model says this region spans `[start_ns, start_ns + dur_ns)` of
    /// simulated time. Deterministic across hosts and thread counts.
    #[inline]
    pub fn complete_modeled(&'static self, start_ns: u64, dur_ns: u64) {
        if !crate::enabled() {
            return;
        }
        let state = self.state();
        recorder::record(state.name_id, EventKind::Complete, Clock::Modeled, start_ns, dur_ns);
        state.spans.incr();
        state.modeled_ns.record(dur_ns);
    }

    /// Records a zero-duration wall-clock marker (a fault fired, a
    /// request was shed, ...).
    #[inline]
    pub fn instant(&'static self) {
        if !crate::enabled() {
            return;
        }
        let state = self.state();
        recorder::record(state.name_id, EventKind::Instant, Clock::Wall, recorder::wall_ns(), 0);
    }
}

/// RAII guard from [`SpanSite::enter`]; records the end event (and the
/// span's wall-duration histogram sample) on drop.
pub struct SpanGuard {
    site: Option<&'static SpanSite>,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(site) = self.site else { return };
        let state = site.state();
        let end_ns = recorder::wall_ns();
        recorder::record(state.name_id, EventKind::End, Clock::Wall, end_ns, 0);
        state.spans.incr();
        state.wall_ns.record(end_ns.saturating_sub(self.start_ns));
    }
}

/// Opens a wall-clock span at a name chosen at runtime (e.g. a
/// per-experiment slug). The name must be `'static` — intern it once,
/// not per call, when the set of names is dynamic.
///
/// Side-metrics (`<name>.spans`, `<name>.wall_ns`) are registered like
/// a [`MetricClass::Deterministic`] site's: the *count* of experiment
/// runs is deterministic even though their wall durations are not.
#[must_use]
pub fn span_dyn(name: &'static str) -> SpanGuard {
    use std::collections::HashMap;
    use std::sync::Mutex;

    if !crate::enabled() {
        return SpanGuard { site: None, start_ns: 0 };
    }
    static SITES: Mutex<Option<HashMap<&'static str, &'static SpanSite>>> = Mutex::new(None);
    let site = {
        let mut sites = SITES.lock().expect("dynamic span table poisoned");
        let map = sites.get_or_insert_with(HashMap::new);
        *map.entry(name)
            .or_insert_with(|| Box::leak(Box::new(SpanSite::new(name, MetricClass::Deterministic))))
    };
    site.enter()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Clock, EventKind};

    #[test]
    fn spans_record_pairs_and_metrics() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        crate::reset();

        static OUTER: SpanSite = SpanSite::new("test.outer", MetricClass::Deterministic);
        static INNER: SpanSite = SpanSite::new("test.inner", MetricClass::Deterministic);
        {
            let _o = OUTER.enter();
            let _i = INNER.enter();
        }
        OUTER.complete_modeled(10, 5);
        OUTER.instant();

        let drained = crate::recorder::drain();
        let outer: Vec<_> = drained.events.iter().filter(|e| e.name == "test.outer").collect();
        assert_eq!(outer.iter().filter(|e| e.kind == EventKind::Begin).count(), 1);
        assert_eq!(outer.iter().filter(|e| e.kind == EventKind::End).count(), 1);
        assert_eq!(
            outer
                .iter()
                .filter(|e| e.kind == EventKind::Complete && e.clock == Clock::Modeled)
                .count(),
            1
        );
        assert_eq!(outer.iter().filter(|e| e.kind == EventKind::Instant).count(), 1);

        // Nesting is well-formed: inner closes before outer on the same
        // thread (events are (tid, seq)-ordered).
        let seqs: Vec<_> = drained
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Begin || e.kind == EventKind::End)
            .map(|e| (e.name, e.kind))
            .collect();
        assert_eq!(
            seqs,
            vec![
                ("test.outer", EventKind::Begin),
                ("test.inner", EventKind::Begin),
                ("test.inner", EventKind::End),
                ("test.outer", EventKind::End),
            ]
        );

        let snap = crate::snapshot();
        assert_eq!(snap.counter("test.outer.spans"), Some(2)); // wall + modeled
        assert_eq!(snap.counter("test.inner.spans"), Some(1));
        crate::disable();
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::disable();
        crate::reset();
        static QUIET: SpanSite = SpanSite::new("test.quiet", MetricClass::Deterministic);
        {
            let _s = QUIET.enter();
        }
        QUIET.complete_modeled(0, 1);
        QUIET.instant();
        let _d = span_dyn("test.quiet_dyn");
        drop(_d);
        assert!(crate::recorder::drain().events.iter().all(|e| !e.name.starts_with("test.quiet")));
        assert_eq!(crate::snapshot().counter("test.quiet.spans").unwrap_or(0), 0);
    }
}
