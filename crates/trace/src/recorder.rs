//! The flight recorder: lock-free per-thread ring buffers of span
//! events, merged at export time.
//!
//! Each thread that records events owns a [`ThreadBuffer`] — a
//! fixed-capacity ring of packed atomic slots written with relaxed
//! stores and never locked on the hot path. Buffers are registered
//! globally so [`drain`] can merge events across every thread the
//! `m7-par` pool ever spawned. When a thread exits, its buffer is parked
//! on a free list and handed to the next new thread, so repeated
//! `par_map` calls (each of which spawns fresh scoped threads) reuse a
//! bounded set of buffers instead of leaking one per thread.
//!
//! When a ring fills, the oldest events are overwritten
//! (flight-recorder semantics) and a dropped-event counter is bumped;
//! exporters report the drop count so truncation is never silent. The
//! default capacity is [`DEFAULT_CAPACITY`] events per thread,
//! overridable with the `M7_TRACE_EVENTS` environment variable.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity in events.
pub const DEFAULT_CAPACITY: usize = 1 << 15;

/// Which clock stamped an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Host monotonic time, nanoseconds since the process trace epoch.
    Wall,
    /// Simulated-platform time, nanoseconds on the model's timeline.
    Modeled,
}

/// The kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ts` = start).
    Begin,
    /// A span closed (`ts` = end).
    End,
    /// A self-contained span (`ts` = start, `dur` = duration).
    Complete,
    /// A zero-duration marker.
    Instant,
}

/// One decoded event from a thread's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Interned span/marker name.
    pub name: &'static str,
    /// Event kind.
    pub kind: EventKind,
    /// Timestamp clock.
    pub clock: Clock,
    /// Timestamp in nanoseconds (see [`Clock`]).
    pub ts_ns: u64,
    /// Duration in nanoseconds; meaningful only for
    /// [`EventKind::Complete`].
    pub dur_ns: u64,
    /// Stable id of the recording thread (dense, starts at 0).
    pub tid: u64,
    /// Position in the thread's total event sequence (monotone per
    /// thread, counts overwritten events too).
    pub seq: u64,
}

// Packed slot layout (3 × AtomicU64 per event):
//   meta = name_id << 32 | kind << 8 | clock   (kind/clock are small)
//   ts   = timestamp ns
//   dur  = duration ns (Complete only)
// A slot with meta == EMPTY has never been written.
const EMPTY: u64 = u64::MAX;

struct Slot {
    meta: AtomicU64,
    ts: AtomicU64,
    dur: AtomicU64,
}

/// One thread's event ring. Created through the global pool; public so
/// `drain` results can reference thread ids, not for direct use.
pub struct ThreadBuffer {
    tid: u64,
    slots: Box<[Slot]>,
    /// Total events ever pushed (head position = head % capacity).
    head: AtomicU64,
}

impl ThreadBuffer {
    fn new(tid: u64, capacity: usize) -> Self {
        let slots = (0..capacity.max(1))
            .map(|_| Slot {
                meta: AtomicU64::new(EMPTY),
                ts: AtomicU64::new(0),
                dur: AtomicU64::new(0),
            })
            .collect();
        Self { tid, slots, head: AtomicU64::new(0) }
    }

    fn push(&self, name_id: u32, kind: EventKind, clock: Clock, ts: u64, dur: u64) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[i];
        let meta = (u64::from(name_id) << 32)
            | ((kind as u64) << 8)
            | match clock {
                Clock::Wall => 0,
                Clock::Modeled => 1,
            };
        slot.ts.store(ts, Ordering::Relaxed);
        slot.dur.store(dur, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
    }

    fn clear(&self) {
        for slot in self.slots.iter() {
            slot.meta.store(EMPTY, Ordering::Relaxed);
        }
        self.head.store(0, Ordering::Relaxed);
    }

    /// Events currently retained, oldest first, plus how many older
    /// events were overwritten.
    fn decode(&self, names: &[&'static str]) -> (Vec<Event>, u64) {
        let head = self.head.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let retained = head.min(cap);
        let dropped = head - retained;
        let mut events = Vec::with_capacity(retained as usize);
        for off in 0..retained {
            let seq = dropped + off;
            let slot = &self.slots[(seq % cap) as usize];
            let meta = slot.meta.load(Ordering::Relaxed);
            if meta == EMPTY {
                continue;
            }
            let name_id = (meta >> 32) as usize;
            let kind = match (meta >> 8) & 0xff {
                0 => EventKind::Begin,
                1 => EventKind::End,
                2 => EventKind::Complete,
                _ => EventKind::Instant,
            };
            let clock = if meta & 0xff == 0 { Clock::Wall } else { Clock::Modeled };
            events.push(Event {
                name: names.get(name_id).copied().unwrap_or("?"),
                kind,
                clock,
                ts_ns: slot.ts.load(Ordering::Relaxed),
                dur_ns: slot.dur.load(Ordering::Relaxed),
                tid: self.tid,
                seq,
            });
        }
        (events, dropped)
    }
}

struct Global {
    /// Every buffer ever created, in tid order. Buffers are never
    /// removed (export needs events from exited pool threads).
    buffers: Mutex<Vec<Arc<ThreadBuffer>>>,
    /// Buffers whose owning thread exited, ready for reuse.
    free: Mutex<Vec<Arc<ThreadBuffer>>>,
    /// Interned names, indexed by the 32-bit id packed into slots.
    names: Mutex<Vec<&'static str>>,
    next_tid: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        buffers: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        names: Mutex::new(Vec::new()),
        next_tid: AtomicUsize::new(0),
    })
}

fn capacity() -> usize {
    static CAPACITY: OnceLock<usize> = OnceLock::new();
    *CAPACITY.get_or_init(|| {
        std::env::var("M7_TRACE_EVENTS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY)
    })
}

/// Interns `name`, returning the id packed into event slots.
pub(crate) fn intern(name: &'static str) -> u32 {
    let mut names = global().names.lock().expect("trace name table poisoned");
    if let Some(i) = names.iter().position(|&n| std::ptr::eq(n.as_ptr(), name.as_ptr())) {
        return i as u32;
    }
    // Fall back to string equality for distinct statics with equal text.
    if let Some(i) = names.iter().position(|&n| n == name) {
        return i as u32;
    }
    names.push(name);
    u32::try_from(names.len() - 1).expect("more than 2^32 span names")
}

/// The wall-clock epoch: everything is stamped relative to the first
/// trace touch so chrome-trace timestamps start near zero.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds of host monotonic time since the trace epoch.
#[must_use]
pub fn wall_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

struct LocalBuffer(Arc<ThreadBuffer>);

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        // Park the buffer for the next thread. Its events stay visible
        // to drain() via the global buffer list; the reusing thread
        // appends after them (same tid — fine for flight recording).
        global().free.lock().expect("trace free list poisoned").push(Arc::clone(&self.0));
    }
}

thread_local! {
    static LOCAL: LocalBuffer = {
        let g = global();
        let reused = g.free.lock().expect("trace free list poisoned").pop();
        let buf = reused.unwrap_or_else(|| {
            let tid = g.next_tid.fetch_add(1, Ordering::Relaxed) as u64;
            let buf = Arc::new(ThreadBuffer::new(tid, capacity()));
            g.buffers.lock().expect("trace buffer list poisoned").push(Arc::clone(&buf));
            buf
        });
        LocalBuffer(buf)
    };
}

/// Records one event on the calling thread's ring.
pub(crate) fn record(name_id: u32, kind: EventKind, clock: Clock, ts: u64, dur: u64) {
    LOCAL.with(|l| l.0.push(name_id, kind, clock, ts, dur));
}

/// Everything the recorder holds, merged across threads.
#[derive(Debug, Clone, Default)]
pub struct Drained {
    /// All retained events, sorted by `(tid, seq)`.
    pub events: Vec<Event>,
    /// Events lost to ring wrap-around, summed over threads.
    pub dropped: u64,
    /// Number of distinct thread buffers (live or parked).
    pub threads: usize,
}

/// Merges every thread's retained events. Threads may keep recording
/// concurrently; the result is a consistent-enough flight-recorder
/// snapshot, exact once recording has quiesced.
#[must_use]
pub fn drain() -> Drained {
    let g = global();
    let names = g.names.lock().expect("trace name table poisoned").clone();
    let buffers = g.buffers.lock().expect("trace buffer list poisoned").clone();
    let mut out = Drained { threads: buffers.len(), ..Drained::default() };
    for buf in &buffers {
        let (events, dropped) = buf.decode(&names);
        out.events.extend(events);
        out.dropped += dropped;
    }
    out.events.sort_by_key(|e| (e.tid, e.seq));
    out
}

/// Clears every thread's ring (drop counters included). Registered
/// names and thread ids are kept.
pub fn clear() {
    let buffers = global().buffers.lock().expect("trace buffer list poisoned").clone();
    for buf in &buffers {
        buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_newest_and_counts_drops() {
        let buf = ThreadBuffer::new(99, 4);
        for i in 0..10u64 {
            buf.push(0, EventKind::Instant, Clock::Wall, i, 0);
        }
        let (events, dropped) = buf.decode(&["x"]);
        assert_eq!(dropped, 6);
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert!(events.iter().all(|e| e.tid == 99 && e.name == "x"));
    }

    #[test]
    fn clear_empties_the_ring() {
        let buf = ThreadBuffer::new(0, 8);
        buf.push(0, EventKind::Begin, Clock::Modeled, 1, 0);
        buf.clear();
        let (events, dropped) = buf.decode(&["x"]);
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let a = wall_ns();
        let b = wall_ns();
        assert!(b >= a);
    }
}
