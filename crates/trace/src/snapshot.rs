//! Versioned, delta-encoded telemetry snapshots.
//!
//! A [`Snapshot`] is a sequenced point-in-time copy of the metric
//! registry ([`MetricsSnapshot`]) plus a coarse wall-clock stamp. The
//! [`TelemetryHub`](crate::hub::TelemetryHub) captures them on a cadence
//! and streams them to sinks (live queries, the on-disk flight journal)
//! as one *full* record followed by [`SnapshotDelta`]s — only what
//! changed since the previous sample, so a journal record costs bytes
//! proportional to activity, not registry size.
//!
//! Three contracts pin the format down:
//!
//! - **Round-trip:** `decode(encode(x)) == x` for both record kinds
//!   (property-tested in `tests/telemetry_props.rs`).
//! - **Delta algebra:** `prev.apply(&next.delta_from(&prev)) == next`,
//!   and [`SnapshotDelta::merge`] is commutative and associative —
//!   counter and histogram-bucket increments add, gauges keep the
//!   high-water value — so deltas can be folded in any order.
//! - **Bounded decode:** every length field is validated against a hard
//!   cap *before* any allocation, so a corrupt or adversarial record can
//!   never balloon memory ([`MAX_SNAPSHOT_ENTRIES`],
//!   [`MAX_METRIC_NAME_LEN`], [`HISTOGRAM_BUCKETS`]).
//!
//! The deterministic-vs-diagnostic split survives encoding: each entry
//! carries its [`MetricClass`], and [`Snapshot::deterministic_only`]
//! filters a decoded snapshot exactly like the live registry.

use crate::metrics::{
    HistogramSnapshot, MetricClass, MetricEntry, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS,
};

/// Wire version of the snapshot record format.
pub const SNAPSHOT_VERSION: u8 = 1;
/// Hard cap on entries per record — far above any real registry, low
/// enough that a corrupt length cannot cause a large allocation.
pub const MAX_SNAPSHOT_ENTRIES: usize = 4096;
/// Hard cap on a metric name's encoded length in bytes.
pub const MAX_METRIC_NAME_LEN: usize = 256;

const KIND_FULL: u8 = 0x00;
const KIND_DELTA: u8 = 0x01;

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HISTOGRAM: u8 = 2;

/// A sequenced point-in-time copy of the metric registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Position in the hub's stream: 0 for the baseline full snapshot,
    /// then contiguous. Journal records are keyed by this.
    pub seq: u64,
    /// Milliseconds since the hub started (wall clock, diagnostic only —
    /// never fed back into modeled time or seeds).
    pub wall_ms: u64,
    /// The metric values, sorted by name.
    pub metrics: MetricsSnapshot,
}

impl Snapshot {
    /// Captures the global registry as snapshot `seq` at `wall_ms`.
    #[must_use]
    pub fn capture(seq: u64, wall_ms: u64) -> Self {
        Self { seq, wall_ms, metrics: crate::registry().snapshot() }
    }

    /// Keeps only deterministic-class entries (thread-count invariant).
    #[must_use]
    pub fn deterministic_only(self) -> Self {
        Self { metrics: self.metrics.deterministic_only(), ..self }
    }

    /// The changes that turn `prev` into `self`: counter and histogram
    /// entries become non-negative increments, gauges carry their new
    /// absolute value. Metrics absent from `prev` (the registry only
    /// grows) enter whole; an unchanged metric contributes nothing.
    ///
    /// Counter or bucket values that *decreased* (a concurrent
    /// `reset()`) are re-emitted whole rather than as an impossible
    /// negative increment, so applying the delta still reproduces
    /// `self` exactly.
    #[must_use]
    pub fn delta_from(&self, prev: &Snapshot) -> SnapshotDelta {
        let mut changes = Vec::new();
        for entry in &self.metrics.entries {
            let old = prev.metrics.get(&entry.name);
            if let Some(change) = entry_delta(entry, old) {
                changes.push(change);
            }
        }
        SnapshotDelta { seq: self.seq, wall_ms: self.wall_ms, changes }
    }

    /// Applies a delta, producing the successor snapshot: counters and
    /// histogram buckets add their increments, gauges take the carried
    /// value, unknown names are inserted in sorted position.
    #[must_use]
    pub fn apply(&self, delta: &SnapshotDelta) -> Snapshot {
        let mut entries = self.metrics.entries.clone();
        for change in &delta.changes {
            match entries.binary_search_by(|e| e.name.as_str().cmp(&change.name)) {
                Ok(i) => apply_change(&mut entries[i], change),
                Err(i) => entries.insert(i, materialize(change)),
            }
        }
        Snapshot { seq: delta.seq, wall_ms: delta.wall_ms, metrics: MetricsSnapshot { entries } }
    }

    /// Encodes a self-contained *full* record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![SNAPSHOT_VERSION, KIND_FULL];
        put_varint(&mut out, self.seq);
        put_varint(&mut out, self.wall_ms);
        put_varint(&mut out, self.metrics.entries.len() as u64);
        for entry in &self.metrics.entries {
            encode_name_class(&mut out, &entry.name, entry.class);
            match &entry.value {
                MetricValue::Counter(v) => {
                    out.push(TAG_COUNTER);
                    put_varint(&mut out, *v);
                }
                MetricValue::Gauge(v) => {
                    out.push(TAG_GAUGE);
                    put_varint(&mut out, *v);
                }
                MetricValue::Histogram(h) => encode_histogram(&mut out, h.count, h.sum, &h.buckets),
            }
        }
        out
    }
}

/// The changes between two consecutive snapshots. See
/// [`Snapshot::delta_from`] for the exact semantics per metric kind.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// Sequence number of the snapshot this delta *produces*.
    pub seq: u64,
    /// Wall stamp of the produced snapshot (milliseconds since hub start).
    pub wall_ms: u64,
    /// Changed metrics, sorted by name.
    pub changes: Vec<DeltaEntry>,
}

/// One changed metric inside a [`SnapshotDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaEntry {
    /// Registered metric name.
    pub name: String,
    /// Determinism class (carried so decoded records keep the split).
    pub class: MetricClass,
    /// The change.
    pub value: DeltaValue,
}

/// The change carried for one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaValue {
    /// Counter increment (merge: add).
    Counter(u64),
    /// New absolute gauge value (merge: max — high-water).
    Gauge(u64),
    /// Histogram increments: count, sum, and per-bucket additions
    /// (merge: add elementwise).
    Histogram {
        /// Increment to the total sample count.
        count: u64,
        /// Increment to the value sum.
        sum: u64,
        /// `(bucket index, count increment)` pairs, ascending index.
        buckets: Vec<(usize, u64)>,
    },
}

impl SnapshotDelta {
    /// Whether the delta carries no changes (nothing worth publishing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Folds `other` into `self`. Commutative and associative up to the
    /// stated per-kind semantics (counters/buckets add, gauges max,
    /// `seq`/`wall_ms` max), so a set of deltas merges to the same value
    /// in any order — the property `tests/telemetry_props.rs` pins.
    pub fn merge(&mut self, other: &SnapshotDelta) {
        self.seq = self.seq.max(other.seq);
        self.wall_ms = self.wall_ms.max(other.wall_ms);
        for change in &other.changes {
            match self.changes.binary_search_by(|e| e.name.as_str().cmp(&change.name)) {
                Ok(i) => merge_change(&mut self.changes[i].value, &change.value),
                Err(i) => self.changes.insert(i, change.clone()),
            }
        }
    }

    /// Encodes a *delta* record.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![SNAPSHOT_VERSION, KIND_DELTA];
        put_varint(&mut out, self.seq);
        put_varint(&mut out, self.wall_ms);
        put_varint(&mut out, self.changes.len() as u64);
        for change in &self.changes {
            encode_name_class(&mut out, &change.name, change.class);
            match &change.value {
                DeltaValue::Counter(v) => {
                    out.push(TAG_COUNTER);
                    put_varint(&mut out, *v);
                }
                DeltaValue::Gauge(v) => {
                    out.push(TAG_GAUGE);
                    put_varint(&mut out, *v);
                }
                DeltaValue::Histogram { count, sum, buckets } => {
                    encode_histogram(&mut out, *count, *sum, buckets)
                }
            }
        }
        out
    }
}

/// A decoded journal/stream record: the baseline or one delta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotRecord {
    /// Self-contained full snapshot (stream position 0).
    Full(Snapshot),
    /// Changes since the preceding record.
    Delta(SnapshotDelta),
}

/// Decodes one record produced by [`Snapshot::encode`] or
/// [`SnapshotDelta::encode`]. Returns `None` on version mismatch,
/// truncation, trailing garbage, or any length field beyond its cap —
/// allocation stays bounded on arbitrary input.
#[must_use]
pub fn decode_record(bytes: &[u8]) -> Option<SnapshotRecord> {
    let mut r = VarReader { bytes, pos: 0 };
    if r.byte()? != SNAPSHOT_VERSION {
        return None;
    }
    let kind = r.byte()?;
    let seq = r.varint()?;
    let wall_ms = r.varint()?;
    let n = r.varint()? as usize;
    if n > MAX_SNAPSHOT_ENTRIES {
        return None;
    }
    let record = match kind {
        KIND_FULL => {
            let mut entries = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let (name, class) = r.name_class()?;
                let value = match r.byte()? {
                    TAG_COUNTER => MetricValue::Counter(r.varint()?),
                    TAG_GAUGE => MetricValue::Gauge(r.varint()?),
                    TAG_HISTOGRAM => MetricValue::Histogram(r.histogram()?),
                    _ => return None,
                };
                entries.push(MetricEntry { name, class, value });
            }
            SnapshotRecord::Full(Snapshot { seq, wall_ms, metrics: MetricsSnapshot { entries } })
        }
        KIND_DELTA => {
            let mut changes = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let (name, class) = r.name_class()?;
                let value = match r.byte()? {
                    TAG_COUNTER => DeltaValue::Counter(r.varint()?),
                    TAG_GAUGE => DeltaValue::Gauge(r.varint()?),
                    TAG_HISTOGRAM => {
                        let HistogramSnapshot { count, sum, buckets } = r.histogram()?;
                        DeltaValue::Histogram { count, sum, buckets }
                    }
                    _ => return None,
                };
                changes.push(DeltaEntry { name, class, value });
            }
            SnapshotRecord::Delta(SnapshotDelta { seq, wall_ms, changes })
        }
        _ => return None,
    };
    if r.pos != bytes.len() {
        return None; // trailing garbage: the record is not what we wrote
    }
    Some(record)
}

fn entry_delta(entry: &MetricEntry, old: Option<&MetricEntry>) -> Option<DeltaEntry> {
    let value = match (&entry.value, old.map(|o| &o.value)) {
        (MetricValue::Counter(new), Some(MetricValue::Counter(prev))) => {
            if new == prev {
                return None;
            }
            // A decrease means the registry was reset mid-stream; carry
            // the absolute value so apply() still lands on `new`.
            DeltaValue::Counter(new.checked_sub(*prev).unwrap_or(*new))
        }
        (MetricValue::Gauge(new), Some(MetricValue::Gauge(prev))) => {
            if new == prev {
                return None;
            }
            DeltaValue::Gauge(*new)
        }
        (MetricValue::Histogram(new), Some(MetricValue::Histogram(prev))) => {
            if new == prev {
                return None;
            }
            histogram_delta(new, prev)?
        }
        // New metric, or a kind change (impossible with the interning
        // registry, but a decoded snapshot could disagree): enter whole.
        (value, _) => full_as_delta(value),
    };
    Some(DeltaEntry { name: entry.name.clone(), class: entry.class, value })
}

fn histogram_delta(new: &HistogramSnapshot, prev: &HistogramSnapshot) -> Option<DeltaValue> {
    if new.count < prev.count || new.sum < prev.sum {
        // Reset mid-stream: re-emit whole.
        return Some(full_as_delta(&MetricValue::Histogram(new.clone())));
    }
    let mut buckets = Vec::new();
    let mut prev_iter = prev.buckets.iter().peekable();
    for &(idx, count) in &new.buckets {
        let prev_count = loop {
            match prev_iter.peek() {
                Some(&&(pidx, pcount)) if pidx < idx => {
                    prev_iter.next();
                    // A bucket present before but gone now is a reset;
                    // handled by the count/sum guard above for real
                    // histograms. Ignore here.
                    let _ = pcount;
                }
                Some(&&(pidx, pcount)) if pidx == idx => break pcount,
                _ => break 0,
            }
        };
        let Some(diff) = count.checked_sub(prev_count) else {
            // Bucket shrank without the totals shrinking — synthetic
            // input; fall back to re-emitting the whole histogram.
            return Some(full_as_delta(&MetricValue::Histogram(new.clone())));
        };
        if diff > 0 {
            buckets.push((idx, diff));
        }
    }
    Some(DeltaValue::Histogram { count: new.count - prev.count, sum: new.sum - prev.sum, buckets })
}

fn full_as_delta(value: &MetricValue) -> DeltaValue {
    match value {
        MetricValue::Counter(v) => DeltaValue::Counter(*v),
        MetricValue::Gauge(v) => DeltaValue::Gauge(*v),
        MetricValue::Histogram(h) => {
            DeltaValue::Histogram { count: h.count, sum: h.sum, buckets: h.buckets.clone() }
        }
    }
}

fn materialize(change: &DeltaEntry) -> MetricEntry {
    let value = match &change.value {
        DeltaValue::Counter(v) => MetricValue::Counter(*v),
        DeltaValue::Gauge(v) => MetricValue::Gauge(*v),
        DeltaValue::Histogram { count, sum, buckets } => {
            MetricValue::Histogram(HistogramSnapshot {
                count: *count,
                sum: *sum,
                buckets: buckets.clone(),
            })
        }
    };
    MetricEntry { name: change.name.clone(), class: change.class, value }
}

fn apply_change(entry: &mut MetricEntry, change: &DeltaEntry) {
    match (&mut entry.value, &change.value) {
        (MetricValue::Counter(v), DeltaValue::Counter(d)) => *v = v.saturating_add(*d),
        (MetricValue::Gauge(v), DeltaValue::Gauge(new)) => *v = *new,
        (MetricValue::Histogram(h), DeltaValue::Histogram { count, sum, buckets }) => {
            h.count = h.count.saturating_add(*count);
            h.sum = h.sum.saturating_add(*sum);
            for &(idx, diff) in buckets {
                match h.buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                    Ok(i) => h.buckets[i].1 = h.buckets[i].1.saturating_add(diff),
                    Err(i) => h.buckets.insert(i, (idx, diff)),
                }
            }
        }
        // Kind mismatch: the change wins wholesale (decoded streams are
        // trusted to be self-consistent; this keeps apply total).
        (value, _) => *value = materialize(change).value,
    }
}

fn merge_change(into: &mut DeltaValue, other: &DeltaValue) {
    match (into, other) {
        (DeltaValue::Counter(a), DeltaValue::Counter(b)) => *a = a.saturating_add(*b),
        (DeltaValue::Gauge(a), DeltaValue::Gauge(b)) => *a = (*a).max(*b),
        (
            DeltaValue::Histogram { count, sum, buckets },
            DeltaValue::Histogram { count: c2, sum: s2, buckets: b2 },
        ) => {
            *count = count.saturating_add(*c2);
            *sum = sum.saturating_add(*s2);
            for &(idx, diff) in b2 {
                match buckets.binary_search_by_key(&idx, |&(i, _)| i) {
                    Ok(i) => buckets[i].1 = buckets[i].1.saturating_add(diff),
                    Err(i) => buckets.insert(i, (idx, diff)),
                }
            }
        }
        // Kind mismatch between merged deltas: keep a deterministic,
        // order-invariant resolution by taking the lexically-larger
        // materialized encoding. In practice kinds never change.
        (into, other) => {
            let a = std::mem::replace(into, other.clone());
            if encode_value_for_cmp(&a) > encode_value_for_cmp(other) {
                *into = a;
            }
        }
    }
}

fn encode_value_for_cmp(v: &DeltaValue) -> Vec<u8> {
    let mut out = Vec::new();
    match v {
        DeltaValue::Counter(x) => {
            out.push(TAG_COUNTER);
            put_varint(&mut out, *x);
        }
        DeltaValue::Gauge(x) => {
            out.push(TAG_GAUGE);
            put_varint(&mut out, *x);
        }
        DeltaValue::Histogram { count, sum, buckets } => {
            encode_histogram(&mut out, *count, *sum, buckets)
        }
    }
    out
}

fn encode_name_class(out: &mut Vec<u8>, name: &str, class: MetricClass) {
    let bytes = name.as_bytes();
    debug_assert!(bytes.len() <= MAX_METRIC_NAME_LEN, "metric name too long: {name}");
    put_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
    out.push(match class {
        MetricClass::Deterministic => 0,
        MetricClass::Diagnostic => 1,
    });
}

fn encode_histogram(out: &mut Vec<u8>, count: u64, sum: u64, buckets: &[(usize, u64)]) {
    out.push(TAG_HISTOGRAM);
    put_varint(out, count);
    put_varint(out, sum);
    put_varint(out, buckets.len() as u64);
    for &(idx, c) in buckets {
        put_varint(out, idx as u64);
        put_varint(out, c);
    }
}

/// LEB128 unsigned varint — 1 byte for values < 128, which covers most
/// bucket indexes and small increments.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

struct VarReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl VarReader<'_> {
    fn byte(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn varint(&mut self) -> Option<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift == 63 && byte > 1 {
                return None; // overflow past u64
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    fn name_class(&mut self) -> Option<(String, MetricClass)> {
        let len = self.varint()? as usize;
        if len > MAX_METRIC_NAME_LEN || self.pos + len > self.bytes.len() {
            return None;
        }
        let name = std::str::from_utf8(&self.bytes[self.pos..self.pos + len]).ok()?.to_string();
        self.pos += len;
        let class = match self.byte()? {
            0 => MetricClass::Deterministic,
            1 => MetricClass::Diagnostic,
            _ => return None,
        };
        Some((name, class))
    }

    fn histogram(&mut self) -> Option<HistogramSnapshot> {
        let count = self.varint()?;
        let sum = self.varint()?;
        let n = self.varint()? as usize;
        if n > HISTOGRAM_BUCKETS {
            return None;
        }
        let mut buckets = Vec::with_capacity(n);
        let mut last: Option<usize> = None;
        for _ in 0..n {
            let idx = self.varint()? as usize;
            if idx >= HISTOGRAM_BUCKETS || last.is_some_and(|l| idx <= l) {
                return None; // indexes must be ascending and in range
            }
            last = Some(idx);
            buckets.push((idx, self.varint()?));
        }
        Some(HistogramSnapshot { count, sum, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, v: u64) -> MetricEntry {
        MetricEntry {
            name: name.to_string(),
            class: MetricClass::Deterministic,
            value: MetricValue::Counter(v),
        }
    }

    fn hist(name: &str, count: u64, sum: u64, buckets: &[(usize, u64)]) -> MetricEntry {
        MetricEntry {
            name: name.to_string(),
            class: MetricClass::Diagnostic,
            value: MetricValue::Histogram(HistogramSnapshot {
                count,
                sum,
                buckets: buckets.to_vec(),
            }),
        }
    }

    fn snap(seq: u64, entries: Vec<MetricEntry>) -> Snapshot {
        Snapshot { seq, wall_ms: seq * 10, metrics: MetricsSnapshot { entries } }
    }

    #[test]
    fn full_record_round_trips() {
        let s = snap(
            3,
            vec![
                counter("a.count", 7),
                hist("b.lat", 4, 90, &[(0, 1), (5, 3)]),
                MetricEntry {
                    name: "c.gauge".into(),
                    class: MetricClass::Deterministic,
                    value: MetricValue::Gauge(123456789),
                },
            ],
        );
        assert_eq!(decode_record(&s.encode()), Some(SnapshotRecord::Full(s)));
    }

    #[test]
    fn delta_apply_reconstructs_next_snapshot() {
        // Entries must stay sorted by name — the registry invariant.
        let a = snap(0, vec![hist("h", 1, 8, &[(3, 1)]), counter("x", 2)]);
        let b =
            snap(1, vec![hist("h", 3, 20, &[(1, 1), (3, 2)]), counter("new", 5), counter("x", 9)]);
        let d = b.delta_from(&a);
        assert_eq!(a.apply(&d), b);
        assert_eq!(decode_record(&d.encode()), Some(SnapshotRecord::Delta(d)));
    }

    #[test]
    fn unchanged_metrics_do_not_appear_in_deltas() {
        let a = snap(0, vec![counter("same", 4), counter("moves", 1)]);
        let mut b = snap(1, vec![counter("same", 4), counter("moves", 1)]);
        b.metrics.entries[1].value = MetricValue::Counter(3);
        let d = b.delta_from(&a);
        assert_eq!(d.changes.len(), 1);
        assert_eq!(d.changes[0].name, "moves");
        assert_eq!(d.changes[0].value, DeltaValue::Counter(2));
    }

    #[test]
    fn merge_is_order_invariant() {
        let base = snap(0, vec![counter("c", 0), hist("h", 0, 0, &[])]);
        let s1 = snap(1, vec![counter("c", 3), hist("h", 1, 4, &[(2, 1)])]);
        let s2 = snap(2, vec![counter("c", 5), hist("h", 3, 10, &[(1, 1), (2, 2)])]);
        let d1 = s1.delta_from(&base);
        let d2 = s2.delta_from(&s1);
        let mut ab = d1.clone();
        ab.merge(&d2);
        let mut ba = d2.clone();
        ba.merge(&d1);
        assert_eq!(ab, ba);
        // The merged delta reproduces the final snapshot in one hop.
        assert_eq!(base.apply(&ab), s2);
    }

    #[test]
    fn decode_rejects_garbage_and_bounds() {
        assert_eq!(decode_record(&[]), None);
        assert_eq!(decode_record(&[9, KIND_FULL, 0, 0, 0]), None, "wrong version");
        assert_eq!(decode_record(&[SNAPSHOT_VERSION, 7, 0, 0, 0]), None, "wrong kind");
        // Entry count beyond the cap must be rejected before allocating.
        let mut huge = vec![SNAPSHOT_VERSION, KIND_FULL, 0, 0];
        put_varint(&mut huge, (MAX_SNAPSHOT_ENTRIES + 1) as u64);
        assert_eq!(decode_record(&huge), None);
        // Trailing garbage after a valid record is rejected.
        let mut ok = snap(0, vec![counter("x", 1)]).encode();
        ok.push(0);
        assert_eq!(decode_record(&ok), None);
        // Truncation at every boundary is rejected, never panics.
        let full = snap(1, vec![counter("x", 300), hist("h", 2, 9, &[(0, 1), (7, 1)])]).encode();
        for cut in 0..full.len() {
            assert_eq!(decode_record(&full[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = VarReader { bytes: &out, pos: 0 };
            assert_eq!(r.varint(), Some(v));
            assert_eq!(r.pos, out.len());
        }
    }
}
