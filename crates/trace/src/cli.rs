//! Shared command-line handling for the observability flags every
//! example binary accepts: `--threads N`, `--trace FILE`, `--metrics`,
//! `--stats-interval MS`, `--journal DIR`.
//!
//! Each binary used to hand-roll the same three match arms; this module
//! centralizes them while leaving usage messages and unknown-argument
//! handling to the binary. [`ObsFlags::consume`] slots into an argument
//! loop as a guard arm, claiming exactly the shared flags:
//!
//! ```
//! use m7_trace::cli::ObsFlags;
//!
//! let mut obs = ObsFlags::default();
//! let mut args = ["--metrics".to_string(), "--threads".into(), "4".into()].into_iter();
//! while let Some(arg) = args.next() {
//!     match arg.as_str() {
//!         s if obs.consume(s, &mut args) => {}
//!         other => panic!("unknown flag: {other}"),
//!     }
//! }
//! assert_eq!(obs.threads, Some(4));
//! assert!(obs.metrics);
//! ```

/// The observability flags shared by the example binaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsFlags {
    /// `--threads N`: explicit deterministic-pool width.
    pub threads: Option<usize>,
    /// `--trace FILE`: write a chrome://tracing JSON trace on exit.
    pub trace_out: Option<String>,
    /// `--metrics`: dump `key=value` metrics to stderr on exit.
    pub metrics: bool,
    /// `--stats-interval MS`: telemetry-hub sampling cadence in
    /// milliseconds. Implied (at the default cadence) by `--journal`.
    pub stats_interval: Option<u64>,
    /// `--journal DIR`: stream hub snapshots into a crash-safe flight
    /// journal under DIR (an `m7-serve` segment store).
    pub journal: Option<String>,
}

impl ObsFlags {
    /// Tries to consume `arg` (pulling any value from `rest`). Returns
    /// `true` if the argument was one of the shared flags, `false` to
    /// let the caller handle it. Prints the standard diagnostic and
    /// exits with status 2 on a missing or invalid flag value.
    pub fn consume(&mut self, arg: &str, rest: &mut dyn Iterator<Item = String>) -> bool {
        match arg {
            "--threads" => {
                let v = rest.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--threads needs a positive integer");
                    std::process::exit(2);
                };
                if v == 0 {
                    eprintln!("--threads must be at least 1");
                    std::process::exit(2);
                }
                self.threads = Some(v);
                true
            }
            "--trace" => {
                let Some(path) = rest.next() else {
                    eprintln!("--trace needs an output file path");
                    std::process::exit(2);
                };
                self.trace_out = Some(path);
                true
            }
            "--metrics" => {
                self.metrics = true;
                true
            }
            "--stats-interval" => {
                let v = rest.next().and_then(|v| v.parse().ok());
                let Some(v) = v else {
                    eprintln!("--stats-interval needs a positive integer (milliseconds)");
                    std::process::exit(2);
                };
                if v == 0 {
                    eprintln!("--stats-interval must be at least 1 millisecond");
                    std::process::exit(2);
                }
                self.stats_interval = Some(v);
                true
            }
            "--journal" => {
                let Some(dir) = rest.next().filter(|d| !d.is_empty()) else {
                    eprintln!("--journal needs a directory path");
                    std::process::exit(2);
                };
                self.journal = Some(dir);
                true
            }
            _ => false,
        }
    }

    /// Enables tracing if any observability output was requested.
    /// Call once, after the argument loop.
    pub fn activate(&self) {
        if self.trace_out.is_some() || self.metrics || self.wants_hub() {
            crate::enable();
        }
    }

    /// Whether a telemetry hub should run (`--stats-interval` or
    /// `--journal` given). Binaries pass this to the shared pump helper
    /// in `m7-serve` that owns the journal sink.
    #[must_use]
    pub fn wants_hub(&self) -> bool {
        self.stats_interval.is_some() || self.journal.is_some()
    }

    /// The hub cadence: `--stats-interval`, or the [`crate::hub::HubConfig`]
    /// default when only `--journal` was given.
    #[must_use]
    pub fn hub_config(&self) -> crate::hub::HubConfig {
        match self.stats_interval {
            Some(ms) => crate::hub::HubConfig { interval: std::time::Duration::from_millis(ms) },
            None => crate::hub::HubConfig::default(),
        }
    }

    /// Emits the requested outputs: writes the chrome://tracing JSON to
    /// the `--trace` file and dumps `--metrics` to stderr. Returns
    /// `false` (after printing the standard diagnostic) if the trace
    /// file could not be written — callers map that to a failure exit.
    #[must_use]
    pub fn finish(&self) -> bool {
        if let Some(path) = &self.trace_out {
            if let Err(err) = std::fs::write(path, crate::chrome_trace_json()) {
                eprintln!("failed to write trace to {path}: {err}");
                return false;
            }
            eprintln!("wrote chrome://tracing JSON to {path}");
        }
        if self.metrics {
            eprint!("{}", crate::kv_dump());
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iter(args: &[&str]) -> impl Iterator<Item = String> {
        args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn consumes_threads_trace_and_metrics() {
        let mut obs = ObsFlags::default();
        let mut rest = iter(&["8"]);
        assert!(obs.consume("--threads", &mut rest));
        let mut rest = iter(&["out.json"]);
        assert!(obs.consume("--trace", &mut rest));
        let mut rest = iter(&[]);
        assert!(obs.consume("--metrics", &mut rest));
        assert_eq!(
            obs,
            ObsFlags {
                threads: Some(8),
                trace_out: Some("out.json".to_string()),
                metrics: true,
                ..ObsFlags::default()
            }
        );
    }

    #[test]
    fn consumes_stats_interval_and_journal() {
        let mut obs = ObsFlags::default();
        let mut rest = iter(&["50"]);
        assert!(obs.consume("--stats-interval", &mut rest));
        let mut rest = iter(&["/tmp/journal"]);
        assert!(obs.consume("--journal", &mut rest));
        assert_eq!(obs.stats_interval, Some(50));
        assert_eq!(obs.journal.as_deref(), Some("/tmp/journal"));
        assert!(obs.wants_hub());
        assert_eq!(obs.hub_config().interval, std::time::Duration::from_millis(50));
        assert!(!ObsFlags::default().wants_hub());
    }

    #[test]
    fn leaves_other_arguments_alone() {
        let mut obs = ObsFlags::default();
        let mut rest = iter(&["value"]);
        assert!(!obs.consume("--serial", &mut rest));
        assert!(!obs.consume("e5", &mut rest));
        assert_eq!(obs, ObsFlags::default());
        assert_eq!(rest.next().as_deref(), Some("value"), "rest must be untouched");
    }

    #[test]
    fn finish_without_outputs_is_a_silent_success() {
        assert!(ObsFlags::default().finish());
    }

    #[test]
    fn finish_reports_unwritable_trace_paths() {
        let obs = ObsFlags {
            trace_out: Some("/nonexistent-dir/trace.json".to_string()),
            ..ObsFlags::default()
        };
        assert!(!obs.finish());
    }
}
