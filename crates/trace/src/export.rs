//! Exporters: chrome://tracing JSON, a flat text report, and a
//! machine-readable `key = value` dump — plus a structural validator
//! for the emitted chrome-trace shape (used by CI's trace-smoke job).
//!
//! Chrome-trace layout: wall-clock spans land on `pid 0` ("wall"), one
//! track per recording thread, as `B`/`E` event pairs; modeled-time
//! spans land on `pid 1` ("modeled") as `X` complete events so the
//! simulated timeline reads independently of host timing. Timestamps
//! are microseconds with nanosecond precision (`ts` fractional). The
//! files open directly in `chrome://tracing` and
//! <https://ui.perfetto.dev>.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::recorder::{self, Clock, Drained, Event, EventKind};
use std::collections::HashMap;
use std::fmt::Write as _;

const WALL_PID: u64 = 0;
const MODELED_PID: u64 = 1;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Pairs up each thread's wall `B`/`E` events, turning the flight
/// recorder's possibly-truncated stream into well-formed spans:
/// an `E` with no open `B` (its begin was overwritten) is dropped, and
/// a `B` still open at the end of the stream is closed at the thread's
/// last seen timestamp. Returns `(begin, end)` event-index pairs.
fn pair_wall_spans(events: &[Event]) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut stacks: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    let mut synthetic_ends: Vec<(usize, u64)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        if e.clock != Clock::Wall {
            continue;
        }
        let ts = last_ts.entry(e.tid).or_insert(0);
        *ts = (*ts).max(e.ts_ns);
        match e.kind {
            EventKind::Begin => stacks.entry(e.tid).or_default().push(i),
            EventKind::End => {
                // Close the innermost open span with the same name;
                // mismatched ends (begin lost to ring wrap) are dropped.
                if let Some(stack) = stacks.get_mut(&e.tid) {
                    if let Some(pos) = stack.iter().rposition(|&bi| events[bi].name == e.name) {
                        let bi = stack.remove(pos);
                        pairs.push((bi, i));
                    }
                }
            }
            _ => {}
        }
    }
    // Begins never closed (end not yet recorded, or lost): synthesize a
    // zero-extent close at the thread's last timestamp.
    for (tid, stack) in stacks {
        let ts = last_ts.get(&tid).copied().unwrap_or(0);
        for bi in stack {
            synthetic_ends.push((bi, ts));
        }
    }
    for (bi, _ts) in synthetic_ends {
        pairs.push((bi, bi)); // degenerate: end = begin (zero duration)
    }
    pairs
}

/// Renders everything recorded so far as chrome://tracing "JSON Array
/// Format" (open in `chrome://tracing` or Perfetto).
#[must_use]
pub fn chrome_trace_json() -> String {
    let drained = recorder::drain();
    chrome_trace_json_from(&drained)
}

fn chrome_trace_json_from(drained: &Drained) -> String {
    let mut lines: Vec<String> = Vec::new();
    for pid in [WALL_PID, MODELED_PID] {
        let name = if pid == WALL_PID { "wall" } else { "modeled" };
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    let mut named_tids: Vec<u64> =
        drained.events.iter().filter(|e| e.clock == Clock::Wall).map(|e| e.tid).collect();
    named_tids.sort_unstable();
    named_tids.dedup();
    for tid in named_tids {
        lines.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{WALL_PID},\"tid\":{tid},\
             \"args\":{{\"name\":\"worker {tid}\"}}}}"
        ));
    }

    // Wall B/E pairs, sanitized, flattened to individual events and
    // sorted by (tid, ts, seq, begin-before-end) so each track's stream
    // is monotone and LIFO-nested even after ring wrap.
    let pairs = pair_wall_spans(&drained.events);
    let mut wall: Vec<(u64, u64, u64, u8, String)> = Vec::with_capacity(pairs.len() * 2);
    for (bi, ei) in pairs {
        let b = &drained.events[bi];
        let end = &drained.events[ei];
        let end_ts = end.ts_ns.max(b.ts_ns);
        wall.push((
            b.tid,
            b.ts_ns,
            b.seq,
            0,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"wall\",\"ph\":\"B\",\"pid\":{WALL_PID},\
                 \"tid\":{},\"ts\":{}}}",
                json_escape(b.name),
                b.tid,
                us(b.ts_ns)
            ),
        ));
        wall.push((
            b.tid,
            end_ts,
            end.seq,
            1,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"wall\",\"ph\":\"E\",\"pid\":{WALL_PID},\
                 \"tid\":{},\"ts\":{}}}",
                json_escape(b.name),
                b.tid,
                us(end_ts)
            ),
        ));
    }
    wall.sort_by_key(|&(tid, ts, seq, rank, _)| (tid, ts, seq, rank));
    lines.extend(wall.into_iter().map(|(_, _, _, _, line)| line));

    // Instants and modeled complete events.
    let mut rest: Vec<&Event> = drained
        .events
        .iter()
        .filter(|e| {
            e.kind == EventKind::Instant
                || (e.kind == EventKind::Complete && e.clock == Clock::Modeled)
        })
        .collect();
    rest.sort_by_key(|e| (e.tid, e.ts_ns, e.seq));
    for e in rest {
        match e.kind {
            EventKind::Instant => lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"instant\",\"ph\":\"i\",\"pid\":{WALL_PID},\
                 \"tid\":{},\"ts\":{},\"s\":\"t\"}}",
                json_escape(e.name),
                e.tid,
                us(e.ts_ns)
            )),
            EventKind::Complete => lines.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"modeled\",\"ph\":\"X\",\"pid\":{MODELED_PID},\
                 \"tid\":{},\"ts\":{},\"dur\":{}}}",
                json_escape(e.name),
                e.tid,
                us(e.ts_ns),
                us(e.dur_ns)
            )),
            _ => {}
        }
    }

    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// A human-readable flat report: enabled state, recorder totals, and
/// every registered metric.
#[must_use]
pub fn text_report() -> String {
    let drained = recorder::drain();
    let snap = crate::snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "== m7-trace report ==");
    let _ = writeln!(
        out,
        "recorder: {} events across {} thread buffers ({} dropped to ring wrap)",
        drained.events.len(),
        drained.threads,
        drained.dropped
    );
    if snap.entries.is_empty() {
        let _ = writeln!(out, "metrics: (none registered)");
        return out;
    }
    let _ = writeln!(out, "metrics ({}):", snap.entries.len());
    for e in &snap.entries {
        let class = match e.class {
            crate::MetricClass::Deterministic => "det ",
            crate::MetricClass::Diagnostic => "diag",
        };
        match &e.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "  [{class}] {:<40} {v}", e.name);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "  [{class}] {:<40} {v} (gauge)", e.name);
            }
            MetricValue::Histogram(h) => {
                let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
                let _ = writeln!(
                    out,
                    "  [{class}] {:<40} n={} sum={} mean={mean:.1}",
                    e.name, h.count, h.sum
                );
            }
        }
    }
    out
}

/// A machine-readable `key = value` dump of every registered metric,
/// sorted by key, plus `trace.dropped_events`. Histograms expand to
/// `<name>.count`, `<name>.sum`, and one `<name>.b<i>` line per nonzero
/// bucket. Grep-friendly for CI.
#[must_use]
pub fn kv_dump() -> String {
    kv_dump_from(&crate::snapshot(), recorder::drain().dropped)
}

fn kv_dump_from(snap: &MetricsSnapshot, dropped: u64) -> String {
    let mut lines: Vec<String> = Vec::new();
    for e in &snap.entries {
        match &e.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                lines.push(format!("{} = {v}", e.name));
            }
            MetricValue::Histogram(h) => {
                lines.push(format!("{}.count = {}", e.name, h.count));
                lines.push(format!("{}.sum = {}", e.name, h.sum));
                for &(i, n) in &h.buckets {
                    lines.push(format!("{}.b{i} = {n}", e.name));
                }
            }
        }
    }
    lines.push(format!("trace.dropped_events = {dropped}"));
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// Summary returned by a successful [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total events parsed.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub wall_spans: usize,
    /// `X` complete events (modeled timeline).
    pub modeled_spans: usize,
    /// `i` instant markers.
    pub instants: usize,
}

// ---- minimal JSON reader (enough for the chrome-trace array shape) ----

/// A parsed JSON value from the crate's minimal zero-dependency reader.
///
/// Public so downstream harnesses can structurally validate their own
/// machine-readable output (e.g. the m7-bench `BENCH_roofline.json`
/// shape) with the same parser that backs [`validate_chrome_trace`],
/// without pulling in a serde stack. Parse documents with [`parse_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object; `None` for other variants or a missing
    /// key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing data).
///
/// # Errors
///
/// Returns a byte-offset description of the first syntax error.
pub fn parse_json(json: &str) -> Result<Json, String> {
    let mut parser = Parser::new(json);
    let doc = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(doc)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.bytes.get(self.pos).ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync on UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }
}

/// Structurally validates chrome-trace JSON produced by
/// [`chrome_trace_json`]: the document must be a JSON array of event
/// objects; every event needs `ph`/`pid`/`tid` (and `name`, `ts` for
/// non-metadata phases); `B`/`E` events must pair up LIFO per
/// `(pid, tid)` with non-decreasing timestamps; `X` durations must be
/// non-negative.
///
/// # Errors
///
/// Returns a description of the first structural violation found.
pub fn validate_chrome_trace(json: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(json)?;
    let Json::Arr(events) = doc else {
        return Err("top level must be a JSON array".into());
    };

    let mut summary = TraceSummary { events: events.len(), ..TraceSummary::default() };
    let mut stacks: HashMap<(u64, u64), Vec<(String, f64)>> = HashMap::new();
    let mut last_ts: HashMap<(u64, u64), f64> = HashMap::new();

    for (i, e) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| at("missing string field \"ph\""))?;
        let pid = e.get("pid").and_then(Json::as_num).ok_or_else(|| at("missing \"pid\""))?;
        let tid = e.get("tid").and_then(Json::as_num).ok_or_else(|| at("missing \"tid\""))?;
        if ph == "M" {
            continue;
        }
        let name = e.get("name").and_then(Json::as_str).ok_or_else(|| at("missing \"name\""))?;
        let ts = e.get("ts").and_then(Json::as_num).ok_or_else(|| at("missing \"ts\""))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(at("\"ts\" must be a finite non-negative number"));
        }
        let track = (pid as u64, tid as u64);
        let prev = last_ts.entry(track).or_insert(ts);
        if ph == "B" || ph == "E" {
            if ts < *prev {
                return Err(at(&format!(
                    "timestamp went backwards on pid {} tid {} ({ts} < {prev})",
                    track.0, track.1
                )));
            }
            *prev = ts;
        }
        match ph {
            "B" => stacks.entry(track).or_default().push((name.to_string(), ts)),
            "E" => {
                let (open_name, open_ts) = stacks
                    .get_mut(&track)
                    .and_then(Vec::pop)
                    .ok_or_else(|| at(&format!("\"E\" for {name:?} with no open \"B\"")))?;
                if open_name != name {
                    return Err(at(&format!(
                        "\"E\" for {name:?} does not match open span {open_name:?}"
                    )));
                }
                if ts < open_ts {
                    return Err(at("span ends before it begins"));
                }
                summary.wall_spans += 1;
            }
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| at("\"X\" missing \"dur\""))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(at("\"X\" duration must be non-negative"));
                }
                summary.modeled_spans += 1;
            }
            "i" | "I" => summary.instants += 1,
            other => return Err(at(&format!("unknown phase {other:?}"))),
        }
    }
    for ((pid, tid), stack) in stacks {
        if let Some((name, _)) = stack.last() {
            return Err(format!(
                "unclosed \"B\" span {name:?} on pid {pid} tid {tid} at end of trace"
            ));
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricClass;
    use crate::span::SpanSite;

    #[test]
    fn exported_trace_validates() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        crate::reset();
        static A: SpanSite = SpanSite::new("export.a", MetricClass::Deterministic);
        static B: SpanSite = SpanSite::new("export.b", MetricClass::Deterministic);
        {
            let _a = A.enter();
            let _b = B.enter();
        }
        A.complete_modeled(100, 40);
        B.instant();
        let json = chrome_trace_json();
        let summary = validate_chrome_trace(&json).expect("emitted trace must validate");
        assert!(summary.wall_spans >= 2);
        assert!(summary.modeled_spans >= 1);
        assert!(summary.instants >= 1);
        crate::disable();
    }

    #[test]
    fn kv_dump_is_sorted_and_expands_histograms() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        crate::reset();
        crate::registry().counter("export.kv.count_a", MetricClass::Deterministic).add(7);
        let h = crate::registry().histogram("export.kv.hist", MetricClass::Deterministic);
        h.record(0);
        h.record(9);
        let dump = kv_dump();
        assert!(dump.contains("export.kv.count_a = 7\n"));
        assert!(dump.contains("export.kv.hist.count = 2\n"));
        assert!(dump.contains("export.kv.hist.sum = 9\n"));
        assert!(dump.contains("export.kv.hist.b0 = 1\n"));
        assert!(dump.contains("trace.dropped_events = "));
        let lines: Vec<&str> = dump.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
        crate::disable();
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("[{\"ph\":\"B\"}]").is_err());
        // E without B.
        let orphan = r#"[{"name":"x","ph":"E","pid":0,"tid":0,"ts":1.0}]"#;
        assert!(validate_chrome_trace(orphan).is_err());
        // Backwards timestamps.
        let backwards = r#"[
            {"name":"x","ph":"B","pid":0,"tid":0,"ts":5.0},
            {"name":"x","ph":"E","pid":0,"tid":0,"ts":1.0}
        ]"#;
        assert!(validate_chrome_trace(backwards).is_err());
        // Unclosed span.
        let unclosed = r#"[{"name":"x","ph":"B","pid":0,"tid":0,"ts":1.0}]"#;
        assert!(validate_chrome_trace(unclosed).is_err());
        // Well-formed.
        let good = r#"[
            {"name":"proc","ph":"M","pid":0,"tid":0,"args":{"name":"wall"}},
            {"name":"x","ph":"B","pid":0,"tid":0,"ts":1.0},
            {"name":"y","ph":"B","pid":0,"tid":0,"ts":2.0},
            {"name":"y","ph":"E","pid":0,"tid":0,"ts":3.0},
            {"name":"x","ph":"E","pid":0,"tid":0,"ts":4.0},
            {"name":"m","ph":"X","pid":1,"tid":0,"ts":0.0,"dur":2.5},
            {"name":"i","ph":"i","pid":0,"tid":0,"ts":4.0,"s":"t"}
        ]"#;
        let s = validate_chrome_trace(good).unwrap();
        assert_eq!((s.events, s.wall_spans, s.modeled_spans, s.instants), (7, 2, 1, 1));
    }

    #[test]
    fn text_report_mentions_metrics() {
        let _guard = crate::tests::GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::enable();
        crate::reset();
        crate::registry().counter("export.report.c", MetricClass::Diagnostic).add(3);
        let report = text_report();
        assert!(report.contains("== m7-trace report =="));
        assert!(report.contains("export.report.c"));
        crate::disable();
    }
}
