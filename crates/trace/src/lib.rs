//! `m7-trace`: zero-dependency structured tracing, metrics, and
//! profiling for the Magnificent-Seven stack.
//!
//! Three pillars, all usable with no external crates:
//!
//! - **Spans** ([`span`]): hierarchical begin/end regions stamped with
//!   *wall-clock* nanoseconds (what actually happened on this machine)
//!   or *modeled* nanoseconds (what the simulated platform would take —
//!   deterministic across hosts and thread counts). Events land in a
//!   lock-free per-thread ring-buffer flight recorder ([`recorder`])
//!   that is merged at export time, including across threads spawned by
//!   the `m7-par` pool.
//! - **Metrics** ([`metrics`]): typed counters, gauges, and fixed
//!   log₂-bucket histograms with exact counts, registered by name in a
//!   process-wide registry. Each metric is classed
//!   [`MetricClass::Deterministic`] (thread-count-invariant, seeds-only)
//!   or [`MetricClass::Diagnostic`] (`sched.*`, wall-time/scheduling
//!   dependent).
//! - **Exporters** ([`export`]): chrome://tracing JSON (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>), a flat text
//!   report, and a machine-readable `key = value` dump.
//!
//! A fourth pillar makes the plane *live* instead of post-mortem: the
//! [`hub::TelemetryHub`] samples the registry on a cadence into
//! versioned, delta-encoded [`snapshot::Snapshot`] records and streams
//! them to pluggable [`hub::SnapshotSink`]s (e.g. `m7-serve`'s
//! crash-safe flight journal), driven by the shared
//! `--stats-interval`/`--journal` CLI flags.
//!
//! Tracing is **off by default** and the disabled path is one relaxed
//! atomic load plus a predictable branch — golden reports and benchmark
//! numbers are unaffected until [`enable`] is called (or the
//! `--trace`/`--metrics` CLI flags flip it on).
//!
//! # Examples
//!
//! ```
//! use m7_trace::{span::SpanSite, MetricClass, TraceCounter};
//!
//! static STEP: SpanSite = SpanSite::new("doc.step", MetricClass::Deterministic);
//! static ITEMS: TraceCounter = TraceCounter::new("doc.items", MetricClass::Deterministic);
//!
//! m7_trace::enable();
//! {
//!     let _span = STEP.enter(); // records begin/end on drop
//!     ITEMS.add(3);
//! }
//! let snap = m7_trace::snapshot();
//! assert_eq!(snap.counter("doc.items"), Some(3));
//! assert_eq!(snap.counter("doc.step.spans"), Some(1));
//! let json = m7_trace::export::chrome_trace_json();
//! assert!(json.contains("doc.step"));
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod export;
pub mod hub;
pub mod metrics;
pub mod recorder;
pub mod snapshot;
pub mod span;

pub use cli::ObsFlags;
pub use export::{
    chrome_trace_json, kv_dump, parse_json, text_report, validate_chrome_trace, Json, TraceSummary,
};
pub use hub::{HubConfig, SnapshotSink, TelemetryHub};
pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricClass, MetricEntry, MetricValue,
    MetricsSnapshot, TraceCounter, TraceGauge, TraceHistogram, HISTOGRAM_BUCKETS,
};
pub use snapshot::{
    decode_record, DeltaEntry, DeltaValue, Snapshot, SnapshotDelta, SnapshotRecord,
    SNAPSHOT_VERSION,
};
pub use span::{span_dyn, SpanGuard, SpanSite};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently on. This is the gate every span and
/// gated metric checks; when it returns `false` instrumentation costs
/// one relaxed load and a branch.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on: spans record, gated metrics count.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events and metric values are
/// kept; use [`reset`] to clear them.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// A point-in-time copy of every registered metric, sorted by name.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    registry().snapshot()
}

/// Zeroes all metrics and clears all recorded span events, keeping
/// registrations valid. The enable state is untouched.
pub fn reset() {
    registry().reset();
    recorder::clear();
}

#[cfg(test)]
mod tests {
    // The enable flag is process-global, so tests that toggle it
    // serialize on this lock (cargo runs #[test] fns concurrently).
    pub(crate) static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_by_default_and_toggles() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        super::disable();
        assert!(!super::enabled());
        super::enable();
        assert!(super::enabled());
        super::disable();
    }
}
