//! Carbon-accounting quantities: [`GramsCo2e`], [`KilogramsCo2e`], and grid
//! [`CarbonIntensity`].
//!
//! Used by `m7-lca` for the paper's Challenge 7 ("Design Global") models:
//! embodied vs. operational carbon, edge-vs-cloud training, and fleet-scale
//! autonomous-vehicle compute.

use crate::energy::Joules;

quantity! {
    /// A mass of CO₂-equivalent emissions, in grams.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::GramsCo2e;
    ///
    /// let per_inference = GramsCo2e::new(0.002);
    /// let per_day = per_inference * 1_000_000.0;
    /// assert_eq!(per_day, GramsCo2e::new(2000.0));
    /// ```
    GramsCo2e, "gCO2e"
}

quantity! {
    /// A mass of CO₂-equivalent emissions, in kilograms.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{GramsCo2e, KilogramsCo2e};
    ///
    /// let embodied = KilogramsCo2e::new(15.0);
    /// assert_eq!(embodied.to_grams(), GramsCo2e::new(15000.0));
    /// ```
    KilogramsCo2e, "kgCO2e"
}

quantity! {
    /// Grid carbon intensity in grams CO₂e per kilowatt-hour.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{CarbonIntensity, GramsCo2e, Joules};
    ///
    /// let grid = CarbonIntensity::new(400.0); // gCO2e / kWh
    /// let emitted = grid.emissions_for(Joules::from_kilowatt_hours(2.0));
    /// assert_eq!(emitted, GramsCo2e::new(800.0));
    /// ```
    CarbonIntensity, "gCO2e/kWh"
}

impl GramsCo2e {
    /// This emission mass expressed in kilograms CO₂e.
    #[inline]
    #[must_use]
    pub fn to_kilograms(self) -> KilogramsCo2e {
        KilogramsCo2e::new(self.value() / 1e3)
    }

    /// This emission mass expressed in metric tonnes CO₂e.
    #[inline]
    #[must_use]
    pub fn as_tonnes(self) -> f64 {
        self.value() / 1e6
    }
}

impl KilogramsCo2e {
    /// This emission mass expressed in grams CO₂e.
    #[inline]
    #[must_use]
    pub fn to_grams(self) -> GramsCo2e {
        GramsCo2e::new(self.value() * 1e3)
    }
}

impl From<KilogramsCo2e> for GramsCo2e {
    #[inline]
    fn from(kg: KilogramsCo2e) -> Self {
        kg.to_grams()
    }
}

impl From<GramsCo2e> for KilogramsCo2e {
    #[inline]
    fn from(g: GramsCo2e) -> Self {
        g.to_kilograms()
    }
}

impl CarbonIntensity {
    /// The emissions produced by drawing `energy` from a grid with this
    /// intensity.
    #[inline]
    #[must_use]
    pub fn emissions_for(self, energy: Joules) -> GramsCo2e {
        GramsCo2e::new(self.value() * energy.as_kilowatt_hours())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_kilogram_round_trip() {
        let g = GramsCo2e::new(2500.0);
        let kg: KilogramsCo2e = g.into();
        assert_eq!(kg, KilogramsCo2e::new(2.5));
        let back: GramsCo2e = kg.into();
        assert_eq!(back, g);
        assert!((GramsCo2e::new(3e6).as_tonnes() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_emissions() {
        // A clean grid emits less for the same energy.
        let energy = Joules::from_kilowatt_hours(10.0);
        let dirty = CarbonIntensity::new(700.0).emissions_for(energy);
        let clean = CarbonIntensity::new(50.0).emissions_for(energy);
        assert!(dirty > clean);
        assert_eq!(dirty, GramsCo2e::new(7000.0));
        assert_eq!(clean, GramsCo2e::new(500.0));
    }
}
