//! The `quantity!` macro: defines a strongly-typed `f64` wrapper with the
//! arithmetic shared by every physical quantity in this crate.

/// Defines a physical-quantity newtype over `f64`.
///
/// The generated type implements `Copy`, `Clone`, `PartialEq`, `PartialOrd`,
/// `Debug`, `Display` (value plus unit symbol), `Default`, serde traits, and
/// the dimensionally sound arithmetic:
///
/// - `Q + Q -> Q`, `Q - Q -> Q`
/// - `Q * f64 -> Q`, `f64 * Q -> Q`, `Q / f64 -> Q`
/// - `Q / Q -> f64` (a dimensionless ratio)
/// - `AddAssign`, `SubAssign`, `MulAssign<f64>`, `DivAssign<f64>`
/// - `std::iter::Sum`
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw value in the base unit.
            #[inline]
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in the base unit.
            #[inline]
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (neither NaN nor infinite).
            #[inline]
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of two quantities.
            #[inline]
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of two quantities.
            #[inline]
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the quantity into `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            #[must_use]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(prec) = f.precision() {
                    write!(f, "{:.*} {}", prec, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl core::ops::DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + x)
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |acc, x| acc + *x)
            }
        }
    };
}

/// Declares the cross-unit relation `$a / $b = $c` together with the implied
/// products `$c * $b = $a` and `$b * $c = $a`, and the co-quotient
/// `$a / $c = $b`.
macro_rules! relate {
    ($a:ty, $b:ty, $c:ty) => {
        impl core::ops::Div<$b> for $a {
            type Output = $c;
            #[inline]
            fn div(self, rhs: $b) -> $c {
                <$c>::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Div<$c> for $a {
            type Output = $b;
            #[inline]
            fn div(self, rhs: $c) -> $b {
                <$b>::new(self.value() / rhs.value())
            }
        }

        impl core::ops::Mul<$b> for $c {
            type Output = $a;
            #[inline]
            fn mul(self, rhs: $b) -> $a {
                <$a>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Mul<$c> for $b {
            type Output = $a;
            #[inline]
            fn mul(self, rhs: $c) -> $a {
                <$a>::new(self.value() * rhs.value())
            }
        }
    };
}
