//! Computation quantities: [`Ops`], [`OpsPerSecond`], [`OpsPerJoule`], and
//! arithmetic intensity [`OpsPerByte`].
//!
//! These power the roofline and cost models in `m7-arch`. [`OpsPerJoule`]
//! is the reciprocal view of the marketing metric "TOPS/W" — the paper's
//! Challenge 2 warns against optimizing it in isolation.

use crate::data::Bytes;
use crate::energy::Joules;
use crate::time::Seconds;

quantity! {
    /// A count of arithmetic operations (e.g. FLOPs or MACs).
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::Ops;
    ///
    /// // A 256x256 GEMV is ~2*n*m operations.
    /// let gemv = Ops::new(2.0 * 256.0 * 256.0);
    /// assert_eq!(gemv, Ops::new(131072.0));
    /// ```
    Ops, "ops"
}

quantity! {
    /// A compute throughput in operations per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::OpsPerSecond;
    ///
    /// let tpu = OpsPerSecond::from_teraops(92.0);
    /// assert_eq!(tpu.as_teraops(), 92.0);
    /// ```
    OpsPerSecond, "ops/s"
}

quantity! {
    /// Energy efficiency in operations per joule.
    ///
    /// `OpsPerJoule::from_tops_per_watt` converts from the "TOPS/W" figure
    /// of merit (numerically identical: 1 TOPS/W = 10¹² ops/J).
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::OpsPerJoule;
    ///
    /// let asic = OpsPerJoule::from_tops_per_watt(4.0);
    /// assert_eq!(asic, OpsPerJoule::new(4e12));
    /// ```
    OpsPerJoule, "ops/J"
}

quantity! {
    /// Arithmetic intensity in operations per byte of memory traffic.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Bytes, Ops, OpsPerByte};
    ///
    /// let intensity: OpsPerByte = Ops::new(1024.0) / Bytes::new(256.0);
    /// assert_eq!(intensity, OpsPerByte::new(4.0));
    /// ```
    OpsPerByte, "ops/B"
}

relate!(Ops, Seconds, OpsPerSecond);
relate!(Ops, Joules, OpsPerJoule);
relate!(Ops, Bytes, OpsPerByte);

impl OpsPerSecond {
    /// Creates a throughput from giga-operations per second.
    #[inline]
    #[must_use]
    pub fn from_gigaops(gops: f64) -> Self {
        Self::new(gops * 1e9)
    }

    /// Creates a throughput from tera-operations per second.
    #[inline]
    #[must_use]
    pub fn from_teraops(tops: f64) -> Self {
        Self::new(tops * 1e12)
    }

    /// The throughput expressed in giga-operations per second.
    #[inline]
    #[must_use]
    pub fn as_gigaops(self) -> f64 {
        self.value() / 1e9
    }

    /// The throughput expressed in tera-operations per second.
    #[inline]
    #[must_use]
    pub fn as_teraops(self) -> f64 {
        self.value() / 1e12
    }
}

impl OpsPerJoule {
    /// Creates an efficiency from the "TOPS/W" figure of merit.
    #[inline]
    #[must_use]
    pub fn from_tops_per_watt(tops_per_watt: f64) -> Self {
        Self::new(tops_per_watt * 1e12)
    }

    /// The efficiency expressed as "TOPS/W".
    #[inline]
    #[must_use]
    pub fn as_tops_per_watt(self) -> f64 {
        self.value() / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::Watts;

    #[test]
    fn throughput_relations() {
        let t: Seconds = Ops::new(1e9) / OpsPerSecond::from_gigaops(2.0);
        assert!((t.value() - 0.5).abs() < 1e-12);
        let done: Ops = OpsPerSecond::new(100.0) * Seconds::new(3.0);
        assert_eq!(done, Ops::new(300.0));
    }

    #[test]
    fn efficiency_relations() {
        let e: Joules = Ops::new(4e12) / OpsPerJoule::from_tops_per_watt(2.0);
        assert!((e.value() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tops_per_watt_is_consistent_with_power() {
        // 10 TOPS at 5 W is 2 TOPS/W.
        let throughput = OpsPerSecond::from_teraops(10.0);
        let power = Watts::new(5.0);
        let one_second = Seconds::new(1.0);
        let ops: Ops = throughput * one_second;
        let energy: Joules = power * one_second;
        let eff: OpsPerJoule = ops / energy;
        assert!((eff.as_tops_per_watt() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity() {
        let ai: OpsPerByte = Ops::new(4096.0) / Bytes::new(1024.0);
        assert_eq!(ai, OpsPerByte::new(4.0));
        let ops: Ops = ai * Bytes::new(10.0);
        assert_eq!(ops, Ops::new(40.0));
    }
}
