//! Spatial quantities: [`Meters`], [`MetersPerSecond`], [`MetersPerSecond2`],
//! and silicon die area [`SquareMillimeters`].

use crate::time::Seconds;

quantity! {
    /// A distance in meters.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Meters, MetersPerSecond, Seconds};
    ///
    /// let leg = Meters::new(120.0);
    /// let speed: MetersPerSecond = leg / Seconds::new(60.0);
    /// assert_eq!(speed, MetersPerSecond::new(2.0));
    /// ```
    Meters, "m"
}

quantity! {
    /// A speed in meters per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Meters, MetersPerSecond, Seconds};
    ///
    /// let covered: Meters = MetersPerSecond::new(3.0) * Seconds::new(4.0);
    /// assert_eq!(covered, Meters::new(12.0));
    /// ```
    MetersPerSecond, "m/s"
}

quantity! {
    /// An acceleration in meters per second squared.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{MetersPerSecond, MetersPerSecond2, Seconds};
    ///
    /// let dv: MetersPerSecond = MetersPerSecond2::new(9.81) * Seconds::new(2.0);
    /// assert!((dv.value() - 19.62).abs() < 1e-12);
    /// ```
    MetersPerSecond2, "m/s^2"
}

quantity! {
    /// Silicon die area in square millimeters.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::SquareMillimeters;
    ///
    /// let die = SquareMillimeters::new(100.0);
    /// let with_margin = die * 1.5;
    /// assert_eq!(with_margin, SquareMillimeters::new(150.0));
    /// ```
    SquareMillimeters, "mm^2"
}

relate!(Meters, Seconds, MetersPerSecond);
relate!(MetersPerSecond, Seconds, MetersPerSecond2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinematic_relations() {
        let v: MetersPerSecond = Meters::new(10.0) / Seconds::new(2.0);
        assert_eq!(v, MetersPerSecond::new(5.0));
        let d: Meters = v * Seconds::new(3.0);
        assert_eq!(d, Meters::new(15.0));
        let a: MetersPerSecond2 = v / Seconds::new(2.5);
        assert_eq!(a, MetersPerSecond2::new(2.0));
        let dv: MetersPerSecond = a * Seconds::new(2.0);
        assert_eq!(dv, MetersPerSecond::new(4.0));
    }

    #[test]
    fn area_scaling() {
        let a = SquareMillimeters::new(50.0);
        assert_eq!(a * 2.0, SquareMillimeters::new(100.0));
        assert_eq!(a / 2.0, SquareMillimeters::new(25.0));
    }
}
