//! Data-volume quantities: [`Bytes`] and [`BytesPerSecond`].

use crate::time::Seconds;

quantity! {
    /// An amount of data in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::Bytes;
    ///
    /// let frame = Bytes::from_mebibytes(2.0);
    /// assert_eq!(frame, Bytes::new(2.0 * 1024.0 * 1024.0));
    /// ```
    Bytes, "B"
}

quantity! {
    /// A data rate in bytes per second.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Bytes, BytesPerSecond, Seconds};
    ///
    /// let link = BytesPerSecond::from_gigabytes_per_second(10.0);
    /// let transfer: Seconds = Bytes::new(5e9) / link;
    /// assert!((transfer.value() - 0.5).abs() < 1e-12);
    /// ```
    BytesPerSecond, "B/s"
}

relate!(Bytes, Seconds, BytesPerSecond);

impl Bytes {
    /// Creates a data amount from kibibytes (1024 B).
    #[inline]
    #[must_use]
    pub fn from_kibibytes(kib: f64) -> Self {
        Self::new(kib * 1024.0)
    }

    /// Creates a data amount from mebibytes (1024² B).
    #[inline]
    #[must_use]
    pub fn from_mebibytes(mib: f64) -> Self {
        Self::new(mib * 1024.0 * 1024.0)
    }

    /// Creates a data amount from decimal gigabytes (10⁹ B).
    #[inline]
    #[must_use]
    pub fn from_gigabytes(gb: f64) -> Self {
        Self::new(gb * 1e9)
    }

    /// The amount expressed in mebibytes.
    #[inline]
    #[must_use]
    pub fn as_mebibytes(self) -> f64 {
        self.value() / (1024.0 * 1024.0)
    }
}

impl BytesPerSecond {
    /// Creates a rate from decimal gigabytes per second.
    #[inline]
    #[must_use]
    pub fn from_gigabytes_per_second(gbps: f64) -> Self {
        Self::new(gbps * 1e9)
    }

    /// The rate expressed in decimal gigabytes per second.
    #[inline]
    #[must_use]
    pub fn as_gigabytes_per_second(self) -> f64 {
        self.value() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors() {
        assert_eq!(Bytes::from_kibibytes(1.0), Bytes::new(1024.0));
        assert_eq!(Bytes::from_mebibytes(1.0), Bytes::new(1048576.0));
        assert_eq!(Bytes::from_gigabytes(1.0), Bytes::new(1e9));
        assert!((Bytes::from_mebibytes(3.5).as_mebibytes() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time() {
        let t: Seconds =
            Bytes::from_gigabytes(1.0) / BytesPerSecond::from_gigabytes_per_second(4.0);
        assert!((t.value() - 0.25).abs() < 1e-12);
        let moved: Bytes = BytesPerSecond::new(100.0) * Seconds::new(2.0);
        assert_eq!(moved, Bytes::new(200.0));
    }
}
