//! Time and rate quantities: [`Seconds`] and [`Hertz`].

quantity! {
    /// A duration in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::Seconds;
    ///
    /// let frame = Seconds::from_millis(33.0);
    /// assert!((frame.value() - 0.033).abs() < 1e-12);
    /// ```
    Seconds, "s"
}

quantity! {
    /// A rate in hertz (events per second).
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::Hertz;
    ///
    /// let camera = Hertz::new(30.0);
    /// assert!((camera.period().value() - 1.0 / 30.0).abs() < 1e-12);
    /// ```
    Hertz, "Hz"
}

impl Seconds {
    /// Creates a duration from milliseconds.
    #[inline]
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::new(ms / 1e3)
    }

    /// Creates a duration from microseconds.
    #[inline]
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::new(us / 1e6)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    #[must_use]
    pub fn from_nanos(ns: f64) -> Self {
        Self::new(ns / 1e9)
    }

    /// Creates a duration from hours.
    #[inline]
    #[must_use]
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// The duration expressed in milliseconds.
    #[inline]
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.value() * 1e3
    }

    /// The duration expressed in hours.
    #[inline]
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// The rate whose period is this duration.
    ///
    /// Returns an infinite rate for a zero duration.
    #[inline]
    #[must_use]
    pub fn rate(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

impl Hertz {
    /// The period of one event at this rate.
    ///
    /// Returns an infinite period for a zero rate.
    #[inline]
    #[must_use]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }

    /// The number of events occurring in `window`.
    #[inline]
    #[must_use]
    pub fn events_in(self, window: Seconds) -> f64 {
        self.value() * window.value()
    }
}

impl From<core::time::Duration> for Seconds {
    #[inline]
    fn from(d: core::time::Duration) -> Self {
        Self::new(d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        let s = Seconds::from_millis(250.0);
        assert!((s.as_millis() - 250.0).abs() < 1e-9);
        let h = Seconds::from_hours(2.0);
        assert!((h.as_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn period_rate_inverse() {
        let f = Hertz::new(100.0);
        let back = f.period().rate();
        assert!((back.value() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!(a + b, Seconds::new(2.0));
        assert_eq!(a - b, Seconds::new(1.0));
        assert_eq!(a * 2.0, Seconds::new(3.0));
        assert_eq!(a / b, 3.0);
        let total: Seconds = [a, b, b].iter().sum();
        assert_eq!(total, Seconds::new(2.5));
    }

    #[test]
    fn events_in_window() {
        let f = Hertz::new(30.0);
        assert!((f.events_in(Seconds::new(2.0)) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn display_includes_symbol() {
        assert_eq!(format!("{:.1}", Seconds::new(1.25)), "1.2 s");
        assert_eq!(format!("{}", Hertz::new(30.0)), "30 Hz");
    }

    #[test]
    fn from_std_duration() {
        let s: Seconds = core::time::Duration::from_millis(1500).into();
        assert!((s.value() - 1.5).abs() < 1e-12);
    }
}
