//! Mass quantities: [`Grams`] and [`Kilograms`].
//!
//! Mass matters to autonomous systems: every gram of compute hardware on a
//! UAV costs hover power (see the E5 experiment in `m7-suite`).

quantity! {
    /// A mass in grams.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Grams, Kilograms};
    ///
    /// let board = Grams::new(250.0);
    /// assert_eq!(board.to_kilograms(), Kilograms::new(0.25));
    /// ```
    Grams, "g"
}

quantity! {
    /// A mass in kilograms.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Grams, Kilograms};
    ///
    /// let airframe = Kilograms::new(1.2);
    /// assert_eq!(airframe.to_grams(), Grams::new(1200.0));
    /// ```
    Kilograms, "kg"
}

impl Grams {
    /// This mass expressed in kilograms.
    #[inline]
    #[must_use]
    pub fn to_kilograms(self) -> Kilograms {
        Kilograms::new(self.value() / 1e3)
    }
}

impl Kilograms {
    /// This mass expressed in grams.
    #[inline]
    #[must_use]
    pub fn to_grams(self) -> Grams {
        Grams::new(self.value() * 1e3)
    }
}

impl From<Grams> for Kilograms {
    #[inline]
    fn from(g: Grams) -> Self {
        g.to_kilograms()
    }
}

impl From<Kilograms> for Grams {
    #[inline]
    fn from(kg: Kilograms) -> Self {
        kg.to_grams()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let g = Grams::new(750.0);
        let kg: Kilograms = g.into();
        assert_eq!(kg, Kilograms::new(0.75));
        let back: Grams = kg.into();
        assert_eq!(back, g);
    }

    #[test]
    fn accumulation() {
        let total: Grams = [Grams::new(100.0), Grams::new(50.5)].iter().sum();
        assert_eq!(total, Grams::new(150.5));
    }
}
