//! Energy and power quantities: [`Joules`], [`Watts`], [`MilliWatts`].

use crate::time::Seconds;

quantity! {
    /// An amount of energy in joules.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Joules, Seconds, Watts};
    ///
    /// let battery = Joules::from_watt_hours(50.0);
    /// let draw = Watts::new(100.0);
    /// let endurance: Seconds = battery / draw;
    /// assert!((endurance.as_hours() - 0.5).abs() < 1e-9);
    /// ```
    Joules, "J"
}

quantity! {
    /// Power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{Joules, Seconds, Watts};
    ///
    /// let energy: Joules = Watts::new(5.0) * Seconds::new(10.0);
    /// assert_eq!(energy, Joules::new(50.0));
    /// ```
    Watts, "W"
}

quantity! {
    /// Power in milliwatts, for low-power edge devices.
    ///
    /// # Examples
    ///
    /// ```
    /// use m7_units::{MilliWatts, Watts};
    ///
    /// let mcu = MilliWatts::new(250.0);
    /// assert_eq!(mcu.to_watts(), Watts::new(0.25));
    /// ```
    MilliWatts, "mW"
}

relate!(Joules, Seconds, Watts);

impl Joules {
    /// Creates an energy from watt-hours (1 Wh = 3600 J).
    #[inline]
    #[must_use]
    pub fn from_watt_hours(wh: f64) -> Self {
        Self::new(wh * 3600.0)
    }

    /// Creates an energy from kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Self::from_watt_hours(kwh * 1e3)
    }

    /// The energy expressed in watt-hours.
    #[inline]
    #[must_use]
    pub fn as_watt_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// The energy expressed in kilowatt-hours.
    #[inline]
    #[must_use]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.as_watt_hours() / 1e3
    }
}

impl Watts {
    /// This power expressed in milliwatts.
    #[inline]
    #[must_use]
    pub fn to_milliwatts(self) -> MilliWatts {
        MilliWatts::new(self.value() * 1e3)
    }
}

impl MilliWatts {
    /// This power expressed in watts.
    #[inline]
    #[must_use]
    pub fn to_watts(self) -> Watts {
        Watts::new(self.value() / 1e3)
    }
}

impl From<MilliWatts> for Watts {
    #[inline]
    fn from(mw: MilliWatts) -> Self {
        mw.to_watts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watt_hours_round_trip() {
        let e = Joules::from_watt_hours(25.0);
        assert!((e.as_watt_hours() - 25.0).abs() < 1e-9);
        assert!((Joules::from_kilowatt_hours(1.0).value() - 3.6e6).abs() < 1e-6);
    }

    #[test]
    fn power_energy_time_relations() {
        let p: Watts = Joules::new(100.0) / Seconds::new(20.0);
        assert_eq!(p, Watts::new(5.0));
        let t: Seconds = Joules::new(100.0) / Watts::new(5.0);
        assert_eq!(t, Seconds::new(20.0));
        let e: Joules = Watts::new(5.0) * Seconds::new(20.0);
        assert_eq!(e, Joules::new(100.0));
        let e2: Joules = Seconds::new(20.0) * Watts::new(5.0);
        assert_eq!(e2, e);
    }

    #[test]
    fn milliwatt_conversion() {
        let w: Watts = MilliWatts::new(1500.0).into();
        assert_eq!(w, Watts::new(1.5));
        assert_eq!(w.to_milliwatts(), MilliWatts::new(1500.0));
    }
}
