//! Physical-quantity newtypes for the `magseven` framework.
//!
//! Every quantity that crosses a crate boundary in `magseven` is a newtype
//! from this crate ([`Seconds`], [`Joules`], [`Watts`], [`Grams`], ...), so
//! the compiler rejects unit confusion such as adding an energy to a power.
//! Raw `f64` values are confined to kernel inner loops.
//!
//! Quantities support the arithmetic that is physically meaningful:
//! same-unit addition/subtraction, scaling by dimensionless `f64`, ratios of
//! same-unit values (yielding `f64`), and a curated set of cross-unit
//! relations (e.g. [`Joules`] `/` [`Seconds`] `=` [`Watts`]).
//!
//! # Examples
//!
//! ```
//! use m7_units::{Joules, Seconds, Watts};
//!
//! let energy = Joules::new(120.0);
//! let time = Seconds::new(60.0);
//! let power: Watts = energy / time;
//! assert_eq!(power, Watts::new(2.0));
//! assert_eq!(power * time, energy);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[macro_use]
mod quantity;

mod carbon;
mod compute;
mod data;
mod energy;
mod mass;
mod space;
mod time;

pub use carbon::{CarbonIntensity, GramsCo2e, KilogramsCo2e};
pub use compute::{Ops, OpsPerByte, OpsPerJoule, OpsPerSecond};
pub use data::{Bytes, BytesPerSecond};
pub use energy::{Joules, MilliWatts, Watts};
pub use mass::{Grams, Kilograms};
pub use space::{Meters, MetersPerSecond, MetersPerSecond2, SquareMillimeters};
pub use time::{Hertz, Seconds};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn all_quantities_are_send_sync() {
        assert_send_sync::<Seconds>();
        assert_send_sync::<Hertz>();
        assert_send_sync::<Joules>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Grams>();
        assert_send_sync::<Kilograms>();
        assert_send_sync::<Meters>();
        assert_send_sync::<MetersPerSecond>();
        assert_send_sync::<SquareMillimeters>();
        assert_send_sync::<Bytes>();
        assert_send_sync::<BytesPerSecond>();
        assert_send_sync::<Ops>();
        assert_send_sync::<OpsPerSecond>();
        assert_send_sync::<OpsPerJoule>();
        assert_send_sync::<GramsCo2e>();
        assert_send_sync::<CarbonIntensity>();
    }
}
