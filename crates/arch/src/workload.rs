//! Kernel workload profiles: the operation and memory-traffic footprint of
//! one kernel invocation, the input to every platform cost model.

use m7_units::{Bytes, Ops, OpsPerByte};
use serde::{Deserialize, Serialize};

/// The family a kernel belongs to, used by specialization matching
/// (experiment E4): a widget accelerator only speeds up its own family,
/// while cross-cutting accelerators target the primitive families shared
/// across tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelFamily {
    /// Dense matrix-vector / matrix-matrix arithmetic.
    DenseLinearAlgebra,
    /// Batched geometric distance and overlap tests.
    CollisionGeometry,
    /// Stencil / image-plane operations.
    Stencil,
    /// Grid correlation search (dense scan matching).
    GridCorrelation,
    /// Sequential recurrences (rigid-body chains, filters).
    Recurrence,
    /// Everything else.
    Other,
}

impl core::fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::DenseLinearAlgebra => "dense-linear-algebra",
            Self::CollisionGeometry => "collision-geometry",
            Self::Stencil => "stencil",
            Self::GridCorrelation => "grid-correlation",
            Self::Recurrence => "recurrence",
            Self::Other => "other",
        };
        f.write_str(s)
    }
}

/// The compute and memory footprint of one kernel invocation.
///
/// # Examples
///
/// ```
/// use m7_arch::workload::KernelProfile;
///
/// let gemv = KernelProfile::gemv(256, 256);
/// assert!(gemv.arithmetic_intensity().value() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    name: String,
    family: KernelFamily,
    ops: Ops,
    bytes: Bytes,
    /// Fraction of the work that parallelizes (Amdahl).
    parallel_fraction: f64,
}

impl KernelProfile {
    /// Creates a profile from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `ops` or `bytes` is negative/non-finite, or
    /// `parallel_fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        family: KernelFamily,
        ops: Ops,
        bytes: Bytes,
        parallel_fraction: f64,
    ) -> Self {
        assert!(ops.value() >= 0.0 && ops.is_finite(), "ops must be a finite non-negative count");
        assert!(bytes.value() >= 0.0 && bytes.is_finite(), "bytes must be finite and non-negative");
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel_fraction must be within [0, 1]"
        );
        Self { name: name.into(), family, ops, bytes, parallel_fraction }
    }

    /// Dense matrix-vector product `y = A x` with an `rows × cols` matrix.
    #[must_use]
    pub fn gemv(rows: usize, cols: usize) -> Self {
        let ops = 2.0 * rows as f64 * cols as f64;
        // Matrix + vectors, 8-byte elements, streamed once.
        let bytes = 8.0 * (rows as f64 * cols as f64 + rows as f64 + cols as f64);
        Self::new(
            format!("gemv-{rows}x{cols}"),
            KernelFamily::DenseLinearAlgebra,
            Ops::new(ops),
            Bytes::new(bytes),
            0.97,
        )
    }

    /// Dense matrix-matrix product with `n × n` operands.
    #[must_use]
    pub fn gemm(n: usize) -> Self {
        let nf = n as f64;
        Self::new(
            format!("gemm-{n}"),
            KernelFamily::DenseLinearAlgebra,
            Ops::new(2.0 * nf * nf * nf),
            Bytes::new(8.0 * 3.0 * nf * nf),
            0.99,
        )
    }

    /// A batch of `edges` segment-collision tests against `obstacles`
    /// primitives (~12 flops per pair).
    #[must_use]
    pub fn collision_batch(edges: usize, obstacles: usize) -> Self {
        let pairs = edges as f64 * obstacles as f64;
        Self::new(
            format!("collision-{edges}x{obstacles}"),
            KernelFamily::CollisionGeometry,
            Ops::new(12.0 * pairs),
            // Edge endpoints streamed once, obstacle SoA reused from cache.
            Bytes::new(32.0 * edges as f64 + 24.0 * obstacles as f64),
            0.98,
        )
    }

    /// Brute-force BRIEF descriptor matching: `queries × candidates`
    /// 256-bit Hamming distances (~12 integer ops per pair: 4 XOR,
    /// 4 popcount, 3 adds, 1 compare).
    #[must_use]
    pub fn descriptor_match(queries: usize, candidates: usize) -> Self {
        let pairs = queries as f64 * candidates as f64;
        Self::new(
            format!("brief-match-{queries}x{candidates}"),
            KernelFamily::Other,
            Ops::new(12.0 * pairs),
            // 32-byte descriptors: queries streamed once, candidate set
            // re-read per query from cache.
            Bytes::new(32.0 * (queries as f64 + candidates as f64)),
            0.98,
        )
    }

    /// One EKF-SLAM correction with an `n`-dimensional state.
    #[must_use]
    pub fn ekf_update(state_dim: usize) -> Self {
        let n = state_dim as f64;
        Self::new(
            format!("ekf-update-{state_dim}"),
            KernelFamily::DenseLinearAlgebra,
            Ops::new(8.0 * n * n),
            Bytes::new(8.0 * 3.0 * n * n),
            0.85,
        )
    }

    /// One dense correlation scan match: `hypotheses` poses × `beams` beams.
    #[must_use]
    pub fn correlation_scan(hypotheses: usize, beams: usize) -> Self {
        let evals = hypotheses as f64 * beams as f64;
        Self::new(
            format!("correlation-{hypotheses}x{beams}"),
            KernelFamily::GridCorrelation,
            Ops::new(10.0 * evals),
            // Grid cells are gather-accessed; assume one 8-byte read per eval.
            Bytes::new(8.0 * evals),
            0.99,
        )
    }

    /// One recursive Newton-Euler inverse-dynamics pass over `dof` joints.
    #[must_use]
    pub fn rnea(dof: usize) -> Self {
        let n = dof as f64;
        Self::new(
            format!("rnea-{dof}"),
            KernelFamily::Recurrence,
            Ops::new(60.0 * n),
            Bytes::new(8.0 * 10.0 * n),
            // The chain recurrence is inherently sequential.
            0.2,
        )
    }

    /// Feature detection over a `width × height` image (~40 flops/pixel).
    #[must_use]
    pub fn feature_extract(width: usize, height: usize) -> Self {
        let pixels = width as f64 * height as f64;
        Self::new(
            format!("features-{width}x{height}"),
            KernelFamily::Stencil,
            Ops::new(40.0 * pixels),
            Bytes::new(pixels + 16.0 * pixels), // u8 in, gradients out
            0.99,
        )
    }

    /// DNN inference with the given multiply-accumulate count and weight
    /// traffic.
    #[must_use]
    pub fn dnn_inference(macs: f64, weight_bytes: f64) -> Self {
        Self::new(
            "dnn-inference",
            KernelFamily::DenseLinearAlgebra,
            Ops::new(2.0 * macs),
            Bytes::new(weight_bytes),
            0.98,
        )
    }

    /// Kernel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Kernel family for specialization matching.
    #[must_use]
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Operation count.
    #[must_use]
    pub fn ops(&self) -> Ops {
        self.ops
    }

    /// Memory traffic.
    #[must_use]
    pub fn bytes(&self) -> Bytes {
        self.bytes
    }

    /// Parallelizable fraction of the work.
    #[must_use]
    pub fn parallel_fraction(&self) -> f64 {
        self.parallel_fraction
    }

    /// Arithmetic intensity (ops per byte of traffic).
    ///
    /// Returns infinity for zero-traffic kernels.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> OpsPerByte {
        self.ops / self.bytes
    }

    /// Returns a copy scaled to `factor` times the work (ops and bytes).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            name: self.name.clone(),
            family: self.family,
            ops: self.ops * factor,
            bytes: self.bytes * factor,
            parallel_fraction: self.parallel_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemv_counts() {
        let p = KernelProfile::gemv(100, 200);
        assert_eq!(p.ops(), Ops::new(40_000.0));
        assert_eq!(p.family(), KernelFamily::DenseLinearAlgebra);
        assert!(p.arithmetic_intensity().value() < 1.0, "GEMV is memory-bound");
    }

    #[test]
    fn gemm_is_compute_bound() {
        let p = KernelProfile::gemm(512);
        assert!(p.arithmetic_intensity().value() > 10.0, "large GEMM is compute-bound");
    }

    #[test]
    fn rnea_is_mostly_serial() {
        let p = KernelProfile::rnea(7);
        assert!(p.parallel_fraction() < 0.5);
    }

    #[test]
    fn scaled_multiplies_work() {
        let p = KernelProfile::gemv(64, 64);
        let s = p.scaled(3.0);
        assert_eq!(s.ops().value(), p.ops().value() * 3.0);
        assert_eq!(s.bytes().value(), p.bytes().value() * 3.0);
        assert_eq!(s.parallel_fraction(), p.parallel_fraction());
    }

    #[test]
    #[should_panic(expected = "parallel_fraction")]
    fn rejects_bad_parallel_fraction() {
        let _ = KernelProfile::new("bad", KernelFamily::Other, Ops::new(1.0), Bytes::new(1.0), 1.5);
    }

    #[test]
    fn family_display() {
        assert_eq!(KernelFamily::CollisionGeometry.to_string(), "collision-geometry");
        assert_eq!(KernelFamily::GridCorrelation.to_string(), "grid-correlation");
    }
}
