//! Accelerator platform and cost models for the `magseven` framework.
//!
//! This crate is the analytic-hardware substrate standing in for the
//! fabricated prototypes of the literature the paper surveys. It provides:
//!
//! - [`workload`] — [`workload::KernelProfile`]: the op/byte footprint of
//!   one kernel invocation, with constructors for every `m7-kernels`
//!   workload.
//! - [`roofline`] — the classic roofline model.
//! - [`platform`] — [`platform::Platform`]: CPU/SIMD/GPU/FPGA/ASIC models
//!   with latency, energy, mass, area, cost, and *specialization* policies
//!   (general-purpose, cross-cutting family accelerator, or single-kernel
//!   "widget").
//! - [`cost`] — [`cost::CostEstimate`] with the limiting roof identified.
//! - [`contention`] — shared-bus bandwidth contention: the "accelerators
//!   are not free" model.
//!
//! # Examples
//!
//! ```
//! use m7_arch::platform::{Platform, PlatformKind};
//! use m7_arch::workload::KernelProfile;
//!
//! let gpu = Platform::preset(PlatformKind::Gpu);
//! let kernel = KernelProfile::collision_batch(50_000, 128);
//! let cost = gpu.estimate(&kernel);
//! println!("{} in {:.3} ms ({})", kernel.name(), cost.latency.as_millis(), cost.bound);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod cost;
pub mod dvfs;
pub mod generator;
pub mod memory;
pub mod platform;
pub mod roofline;
pub mod spec;
pub mod workload;
