//! A tiny textual accelerator-specification language.
//!
//! The paper's §3.1 ("Agile Design Tools") asks for high-level interfaces
//! through which *domain experts* — not just architects — can describe
//! candidate accelerators. This module provides exactly that: a
//! line-oriented `key = value` format that compiles into a validated
//! [`Platform`], with positioned error messages.
//!
//! ```text
//! # my collision accelerator
//! name          = collision-engine
//! kind          = asic
//! peak_tops     = 2.5
//! bandwidth_gbps = 150
//! serial_gops   = 1.0
//! dispatch_us   = 3
//! active_w      = 6
//! idle_w        = 0.5
//! mass_g        = 40
//! area_mm2      = 75
//! cost_usd      = 42
//! specialize    = families collision-geometry dense-linear-algebra
//! fallback      = 0.05
//! ```
//!
//! Every field is optional except `kind`; omitted fields inherit the
//! preset for that kind.

use crate::platform::{Platform, PlatformKind, Specialization};
use crate::roofline::Roofline;
use crate::workload::KernelFamily;
use m7_units::{BytesPerSecond, Grams, OpsPerSecond, Seconds, SquareMillimeters, Watts};

/// A specification parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSpecError {
    /// 1-based line of the offending input (0 for document-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: SpecErrorKind,
}

/// The kinds of specification errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecErrorKind {
    /// A line was not of the form `key = value`.
    MalformedLine,
    /// The key is not recognized.
    UnknownKey(String),
    /// The value could not be parsed for its key.
    InvalidValue {
        /// The key whose value failed.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// `kind = …` named an unknown platform kind.
    UnknownKind(String),
    /// A `specialize = families …` listed an unknown kernel family.
    UnknownFamily(String),
    /// The mandatory `kind` field was missing.
    MissingKind,
}

impl core::fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match &self.kind {
            SpecErrorKind::MalformedLine => {
                write!(f, "line {}: expected `key = value`", self.line)
            }
            SpecErrorKind::UnknownKey(k) => write!(f, "line {}: unknown key `{k}`", self.line),
            SpecErrorKind::InvalidValue { key, value } => {
                write!(f, "line {}: invalid value `{value}` for `{key}`", self.line)
            }
            SpecErrorKind::UnknownKind(k) => {
                write!(f, "line {}: unknown platform kind `{k}`", self.line)
            }
            SpecErrorKind::UnknownFamily(k) => {
                write!(f, "line {}: unknown kernel family `{k}`", self.line)
            }
            SpecErrorKind::MissingKind => write!(f, "spec is missing the `kind` field"),
        }
    }
}

impl std::error::Error for ParseSpecError {}

fn parse_kind(s: &str) -> Option<PlatformKind> {
    match s {
        "cpu-scalar" => Some(PlatformKind::CpuScalar),
        "cpu-simd" => Some(PlatformKind::CpuSimd),
        "gpu" => Some(PlatformKind::Gpu),
        "fpga" => Some(PlatformKind::Fpga),
        "asic" => Some(PlatformKind::Asic),
        _ => None,
    }
}

fn parse_family(s: &str) -> Option<KernelFamily> {
    match s {
        "dense-linear-algebra" => Some(KernelFamily::DenseLinearAlgebra),
        "collision-geometry" => Some(KernelFamily::CollisionGeometry),
        "stencil" => Some(KernelFamily::Stencil),
        "grid-correlation" => Some(KernelFamily::GridCorrelation),
        "recurrence" => Some(KernelFamily::Recurrence),
        "other" => Some(KernelFamily::Other),
        _ => None,
    }
}

/// Parses an accelerator specification into a [`Platform`].
///
/// # Errors
///
/// Returns a [`ParseSpecError`] with the offending line on malformed
/// input, unknown keys/kinds/families, bad numbers, or a missing `kind`.
///
/// # Examples
///
/// ```
/// use m7_arch::spec::parse_platform;
///
/// let platform = parse_platform(
///     "kind = fpga\nname = my-fpga\npeak_tops = 0.8\nmass_g = 120\n",
/// )?;
/// assert_eq!(platform.name(), "my-fpga");
/// assert_eq!(platform.mass(), m7_units::Grams::new(120.0));
/// # Ok::<(), m7_arch::spec::ParseSpecError>(())
/// ```
pub fn parse_platform(input: &str) -> Result<Platform, ParseSpecError> {
    // First pass: find the kind so defaults come from its preset.
    let mut kind: Option<PlatformKind> = None;
    let mut fields: Vec<(usize, String, String)> = Vec::new();
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(ParseSpecError { line: line_no, kind: SpecErrorKind::MalformedLine });
        };
        let key = key.trim().to_string();
        let value = value.trim().to_string();
        if key == "kind" {
            kind = Some(parse_kind(&value).ok_or(ParseSpecError {
                line: line_no,
                kind: SpecErrorKind::UnknownKind(value.clone()),
            })?);
        } else {
            fields.push((line_no, key, value));
        }
    }
    let kind = kind.ok_or(ParseSpecError { line: 0, kind: SpecErrorKind::MissingKind })?;
    let mut builder = Platform::builder(kind);
    let preset = Platform::preset(kind);
    let mut peak = preset.roofline().peak();
    let mut bandwidth = preset.roofline().bandwidth();
    let mut active = preset.active_power();
    let mut idle = preset.idle_power();

    let parse_f64 = |line: usize, key: &str, value: &str| -> Result<f64, ParseSpecError> {
        value.parse::<f64>().map_err(|_| ParseSpecError {
            line,
            kind: SpecErrorKind::InvalidValue { key: key.to_string(), value: value.to_string() },
        })
    };

    for (line, key, value) in fields {
        match key.as_str() {
            "name" => builder = builder.name(value),
            "peak_tops" => peak = OpsPerSecond::from_teraops(parse_f64(line, &key, &value)?),
            "bandwidth_gbps" => {
                bandwidth =
                    BytesPerSecond::from_gigabytes_per_second(parse_f64(line, &key, &value)?);
            }
            "serial_gops" => {
                builder =
                    builder.serial_rate(OpsPerSecond::from_gigaops(parse_f64(line, &key, &value)?));
            }
            "dispatch_us" => {
                builder =
                    builder.dispatch_overhead(Seconds::from_micros(parse_f64(line, &key, &value)?));
            }
            "active_w" => active = Watts::new(parse_f64(line, &key, &value)?),
            "idle_w" => idle = Watts::new(parse_f64(line, &key, &value)?),
            "mass_g" => builder = builder.mass(Grams::new(parse_f64(line, &key, &value)?)),
            "area_mm2" => {
                builder = builder.die_area(SquareMillimeters::new(parse_f64(line, &key, &value)?));
            }
            "cost_usd" => builder = builder.unit_cost_usd(parse_f64(line, &key, &value)?),
            "fallback" => {
                // Applied below if a specialization was requested; stored by
                // re-parsing in the specialize arm is simpler: tolerate order
                // by deferring. Handled in the second sweep below.
                let _ = parse_f64(line, &key, &value)?;
            }
            "specialize" => { /* handled below */ }
            other => {
                return Err(ParseSpecError {
                    line,
                    kind: SpecErrorKind::UnknownKey(other.to_string()),
                })
            }
        }
    }

    // Second sweep for specialization (so `fallback` may appear anywhere).
    let mut fallback = 0.02f64;
    let mut families: Option<Vec<KernelFamily>> = None;
    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        let Some((key, value)) = line.split_once('=') else { continue };
        let key = key.trim();
        let value = value.trim();
        if key == "fallback" {
            fallback = parse_f64(line_no, key, value)?;
        } else if key == "specialize" {
            let mut words = value.split_whitespace();
            match words.next() {
                Some("families") => {
                    let mut fams = Vec::new();
                    for w in words {
                        fams.push(parse_family(w).ok_or(ParseSpecError {
                            line: line_no,
                            kind: SpecErrorKind::UnknownFamily(w.to_string()),
                        })?);
                    }
                    families = Some(fams);
                }
                Some("general") | None => {}
                Some(other) => {
                    return Err(ParseSpecError {
                        line: line_no,
                        kind: SpecErrorKind::InvalidValue {
                            key: "specialize".into(),
                            value: other.into(),
                        },
                    })
                }
            }
        }
    }
    if let Some(families) = families {
        builder = builder.specialization(Specialization::Families { families, fallback });
    }

    Ok(builder.roofline(Roofline::new(peak, bandwidth)).power(active, idle).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KernelProfile;

    const FULL_SPEC: &str = "\
# a collision accelerator described by a roboticist
name           = collision-engine
kind           = asic
peak_tops      = 2.5
bandwidth_gbps = 150
serial_gops    = 1.0
dispatch_us    = 3
active_w       = 6
idle_w         = 0.5
mass_g         = 40
area_mm2       = 75
cost_usd       = 42
specialize     = families collision-geometry dense-linear-algebra
fallback       = 0.05
";

    #[test]
    fn full_spec_round_trips() {
        let p = parse_platform(FULL_SPEC).unwrap();
        assert_eq!(p.name(), "collision-engine");
        assert_eq!(p.kind(), PlatformKind::Asic);
        assert_eq!(p.mass(), Grams::new(40.0));
        assert_eq!(p.die_area(), SquareMillimeters::new(75.0));
        assert_eq!(p.unit_cost_usd(), 42.0);
        assert_eq!(p.active_power(), Watts::new(6.0));
        assert!((p.roofline().peak().as_teraops() - 2.5).abs() < 1e-12);
        // Specialization behaves.
        assert_eq!(p.match_factor(&KernelProfile::collision_batch(100, 10)), 1.0);
        assert_eq!(p.match_factor(&KernelProfile::correlation_scan(100, 10)), 0.05);
    }

    #[test]
    fn minimal_spec_inherits_preset() {
        let p = parse_platform("kind = gpu").unwrap();
        let preset = Platform::preset(PlatformKind::Gpu);
        assert_eq!(p.roofline(), preset.roofline());
        assert_eq!(p.mass(), preset.mass());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let p = parse_platform("\n# comment only\nkind = fpga  # trailing comment\n\n").unwrap();
        assert_eq!(p.kind(), PlatformKind::Fpga);
    }

    #[test]
    fn missing_kind_is_reported() {
        let err = parse_platform("name = x").unwrap_err();
        assert_eq!(err.kind, SpecErrorKind::MissingKind);
    }

    #[test]
    fn malformed_line_carries_line_number() {
        let err = parse_platform("kind = asic\nthis is not a field\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, SpecErrorKind::MalformedLine);
    }

    #[test]
    fn unknown_key_value_kind_family() {
        let err = parse_platform("kind = asic\nwarp_drive = 9\n").unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownKey(ref k) if k == "warp_drive"));

        let err = parse_platform("kind = asic\nmass_g = heavy\n").unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::InvalidValue { .. }));
        assert_eq!(err.line, 2);

        let err = parse_platform("kind = quantum\n").unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownKind(ref k) if k == "quantum"));

        let err = parse_platform("kind = asic\nspecialize = families warp-fields\n").unwrap_err();
        assert!(matches!(err.kind, SpecErrorKind::UnknownFamily(ref k) if k == "warp-fields"));
    }

    #[test]
    fn error_display_is_positioned() {
        let err = parse_platform("kind = asic\nmass_g = heavy\n").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"));
        assert!(text.contains("mass_g"));
    }

    #[test]
    fn parsed_platform_estimates_like_built_platform() {
        let parsed = parse_platform(FULL_SPEC).unwrap();
        let kernel = KernelProfile::collision_batch(10_000, 64);
        let cost = parsed.estimate(&kernel);
        assert!(cost.latency.value() > 0.0);
        assert!(cost.energy.value() > 0.0);
    }
}
