//! Dynamic voltage and frequency scaling: operating points trading
//! throughput for power on the classic `P ∝ f·V²` (≈ cubic in frequency)
//! curve.
//!
//! DVFS is the knob that lets one piece of silicon sit at several points
//! of the energy/latency trade space — the cheapest way to "pump the
//! brakes" (Challenge 4) without taping out new hardware.

use crate::platform::Platform;
use crate::roofline::Roofline;
use m7_units::{OpsPerSecond, Watts};
use serde::{Deserialize, Serialize};

/// One voltage/frequency operating point, relative to the nominal point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Frequency as a fraction of nominal, in `(0, 1.2]`.
    pub frequency_scale: f64,
    /// Supply voltage as a fraction of nominal.
    pub voltage_scale: f64,
}

impl OperatingPoint {
    /// The nominal point.
    pub const NOMINAL: Self = Self { frequency_scale: 1.0, voltage_scale: 1.0 };

    /// A standard ladder of points from a deep-sleep-adjacent crawl to a
    /// mild overdrive: voltage tracks frequency with the usual guard band.
    #[must_use]
    pub fn ladder() -> Vec<Self> {
        [0.25, 0.5, 0.75, 1.0, 1.2]
            .into_iter()
            .map(|f| Self { frequency_scale: f, voltage_scale: 0.6 + 0.4 * f })
            .collect()
    }

    /// Dynamic-power multiplier at this point: `f · V²`.
    #[must_use]
    pub fn power_scale(self) -> f64 {
        self.frequency_scale * self.voltage_scale * self.voltage_scale
    }

    /// Energy-per-operation multiplier: `V²` (frequency cancels).
    #[must_use]
    pub fn energy_per_op_scale(self) -> f64 {
        self.voltage_scale * self.voltage_scale
    }
}

/// Applies an operating point to a platform: compute throughput and the
/// serial rate scale with frequency; active power scales with `f·V²`
/// (idle power and memory bandwidth are left untouched — bandwidth is set
/// by the memory system, not the core clock).
///
/// # Panics
///
/// Panics if the frequency scale is not in `(0, 1.2]`.
///
/// # Examples
///
/// ```
/// use m7_arch::dvfs::{scaled_platform, OperatingPoint};
/// use m7_arch::platform::{Platform, PlatformKind};
/// use m7_arch::workload::KernelProfile;
///
/// let nominal = Platform::preset(PlatformKind::CpuSimd);
/// let half = scaled_platform(&nominal, OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 });
/// let k = KernelProfile::gemm(128);
/// let fast = nominal.estimate(&k);
/// let slow = half.estimate(&k);
/// assert!(slow.latency > fast.latency);
/// assert!(slow.energy < fast.energy, "lower V² wins on energy");
/// ```
#[must_use]
pub fn scaled_platform(platform: &Platform, point: OperatingPoint) -> Platform {
    assert!(
        point.frequency_scale > 0.0 && point.frequency_scale <= 1.2,
        "frequency scale must be in (0, 1.2]"
    );
    let roofline = platform.roofline();
    let peak = OpsPerSecond::new(roofline.peak().value() * point.frequency_scale);
    Platform::builder(platform.kind())
        .name(format!("{}@{:.0}%", platform.name(), point.frequency_scale * 100.0))
        .roofline(Roofline::new(peak, roofline.bandwidth()))
        .serial_rate(OpsPerSecond::new(platform.serial_rate().value() * point.frequency_scale))
        .dispatch_overhead(platform.dispatch_overhead())
        .power(
            Watts::new(platform.active_power().value() * point.power_scale()),
            platform.idle_power(),
        )
        .mass(platform.mass())
        .die_area(platform.die_area())
        .unit_cost_usd(platform.unit_cost_usd())
        .specialization(platform.specialization().clone())
        .build()
}

/// Sweeps the standard ladder over a platform and returns
/// `(operating point, platform)` pairs — the input for a latency/energy
/// Pareto analysis.
#[must_use]
pub fn ladder_sweep(platform: &Platform) -> Vec<(OperatingPoint, Platform)> {
    OperatingPoint::ladder().into_iter().map(|p| (p, scaled_platform(platform, p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind;
    use crate::workload::KernelProfile;

    #[test]
    fn power_scale_is_cubic_ish() {
        let half = OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 };
        assert!((half.power_scale() - 0.5 * 0.64).abs() < 1e-12);
        assert_eq!(OperatingPoint::NOMINAL.power_scale(), 1.0);
    }

    #[test]
    fn ladder_is_monotone_in_power() {
        let ladder = OperatingPoint::ladder();
        for w in ladder.windows(2) {
            assert!(w[0].power_scale() < w[1].power_scale());
            assert!(w[0].energy_per_op_scale() < w[1].energy_per_op_scale());
        }
    }

    #[test]
    fn downclocking_trades_latency_for_energy() {
        let nominal = Platform::preset(PlatformKind::Gpu);
        // A compute-bound kernel so frequency matters.
        let kernel = KernelProfile::gemm(512);
        let base = nominal.estimate(&kernel);
        let slow =
            scaled_platform(&nominal, OperatingPoint { frequency_scale: 0.5, voltage_scale: 0.8 })
                .estimate(&kernel);
        assert!(slow.latency > base.latency);
        assert!(slow.energy < base.energy);
    }

    #[test]
    fn memory_bound_kernels_barely_slow_down() {
        let nominal = Platform::preset(PlatformKind::CpuSimd);
        let kernel = KernelProfile::gemv(2048, 2048); // memory-bound
        let base = nominal.estimate(&kernel).latency;
        let slow =
            scaled_platform(&nominal, OperatingPoint { frequency_scale: 0.75, voltage_scale: 0.9 })
                .estimate(&kernel)
                .latency;
        // Bandwidth unchanged, so the slowdown is far less than 1/0.75.
        assert!(slow.value() / base.value() < 1.15, "{} vs {}", slow, base);
    }

    #[test]
    fn ladder_sweep_covers_all_points() {
        let sweep = ladder_sweep(&Platform::preset(PlatformKind::Asic));
        assert_eq!(sweep.len(), 5);
        // Latency decreases along the ladder for a compute-bound kernel.
        let kernel = KernelProfile::gemm(256);
        let lats: Vec<f64> =
            sweep.iter().map(|(_, p)| p.estimate(&kernel).latency.value()).collect();
        for w in lats.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "frequency scale")]
    fn rejects_zero_frequency() {
        let _ = scaled_platform(
            &Platform::preset(PlatformKind::Asic),
            OperatingPoint { frequency_scale: 0.0, voltage_scale: 0.5 },
        );
    }
}
