//! The roofline performance model: attainable throughput as the minimum of
//! the compute roof and the bandwidth-scaled arithmetic intensity.

use m7_units::{BytesPerSecond, OpsPerByte, OpsPerSecond};
use serde::{Deserialize, Serialize};

/// A roofline: peak compute throughput plus peak memory bandwidth.
///
/// # Examples
///
/// ```
/// use m7_arch::roofline::Roofline;
/// use m7_units::{BytesPerSecond, OpsPerByte, OpsPerSecond};
///
/// let roof = Roofline::new(
///     OpsPerSecond::from_teraops(1.0),
///     BytesPerSecond::from_gigabytes_per_second(100.0),
/// );
/// // At the ridge point the two roofs meet.
/// let ridge = roof.ridge_point();
/// let at_ridge = roof.attainable(ridge);
/// assert!((at_ridge.as_teraops() - 1.0).abs() < 1e-9);
/// // Far below the ridge the kernel is bandwidth-bound.
/// let low = roof.attainable(OpsPerByte::new(0.1));
/// assert!(low < at_ridge);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    peak: OpsPerSecond,
    bandwidth: BytesPerSecond,
}

impl Roofline {
    /// Creates a roofline from peak throughput and bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if either peak is non-positive or non-finite.
    #[must_use]
    pub fn new(peak: OpsPerSecond, bandwidth: BytesPerSecond) -> Self {
        assert!(peak.value() > 0.0 && peak.is_finite(), "peak must be positive");
        assert!(bandwidth.value() > 0.0 && bandwidth.is_finite(), "bandwidth must be positive");
        Self { peak, bandwidth }
    }

    /// Peak compute throughput.
    #[must_use]
    pub fn peak(self) -> OpsPerSecond {
        self.peak
    }

    /// Peak memory bandwidth.
    #[must_use]
    pub fn bandwidth(self) -> BytesPerSecond {
        self.bandwidth
    }

    /// Attainable throughput at the given arithmetic intensity:
    /// `min(peak, bandwidth × intensity)`.
    #[must_use]
    pub fn attainable(self, intensity: OpsPerByte) -> OpsPerSecond {
        let bw_bound = OpsPerSecond::new(self.bandwidth.value() * intensity.value());
        bw_bound.min(self.peak)
    }

    /// The arithmetic intensity at which compute and bandwidth roofs meet.
    #[must_use]
    pub fn ridge_point(self) -> OpsPerByte {
        OpsPerByte::new(self.peak.value() / self.bandwidth.value())
    }

    /// Returns `true` if a kernel of the given intensity is bandwidth-bound
    /// on this roofline.
    #[must_use]
    pub fn is_memory_bound(self, intensity: OpsPerByte) -> bool {
        intensity < self.ridge_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roof() -> Roofline {
        Roofline::new(
            OpsPerSecond::from_gigaops(500.0),
            BytesPerSecond::from_gigabytes_per_second(50.0),
        )
    }

    #[test]
    fn ridge_point_value() {
        assert!((roof().ridge_point().value() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_below_ridge() {
        let r = roof();
        assert!(r.is_memory_bound(OpsPerByte::new(1.0)));
        assert!(!r.is_memory_bound(OpsPerByte::new(100.0)));
    }

    #[test]
    fn attainable_is_capped_by_peak() {
        let r = roof();
        assert_eq!(r.attainable(OpsPerByte::new(1e9)), r.peak());
    }

    #[test]
    fn attainable_scales_with_intensity_when_bound() {
        let r = roof();
        let a = r.attainable(OpsPerByte::new(1.0));
        let b = r.attainable(OpsPerByte::new(2.0));
        assert!((b.value() / a.value() - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_attainable_never_exceeds_either_roof(intensity in 0.001..1e6f64) {
            let r = roof();
            let got = r.attainable(OpsPerByte::new(intensity));
            prop_assert!(got <= r.peak());
            prop_assert!(got.value() <= r.bandwidth().value() * intensity + 1e-6);
        }

        #[test]
        fn prop_attainable_monotone(a in 0.001..1e5f64, b in 0.001..1e5f64) {
            let r = roof();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(r.attainable(OpsPerByte::new(lo)) <= r.attainable(OpsPerByte::new(hi)));
        }
    }
}
