//! A parameterized accelerator generator: from microarchitectural knobs
//! (PE count, clock, SRAM, DRAM interface, precision) to a validated
//! [`Platform`] with analytically scaled throughput, power, area, and
//! cost.
//!
//! This is the handle design-space exploration actually turns in an
//! accelerator study — rather than choosing among presets, the explorer
//! sweeps [`AcceleratorConfig`]s and every derived model (roofline,
//! energy, die area, embodied carbon via `m7-lca`) moves consistently.

use crate::platform::{Platform, PlatformKind, Specialization};
use crate::roofline::Roofline;
use crate::workload::KernelFamily;
use m7_units::{BytesPerSecond, Grams, OpsPerSecond, Seconds, SquareMillimeters, Watts};
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of a generated accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of processing elements (MAC lanes).
    pub pe_count: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// On-chip SRAM in KiB.
    pub sram_kib: f64,
    /// DRAM interface bandwidth (GB/s).
    pub dram_gbps: f64,
    /// Datapath width in bits (8, 16, or 32).
    pub datapath_bits: u32,
    /// Kernel families the datapath is wired for (empty = general).
    pub families: Vec<KernelFamily>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self {
            pe_count: 256,
            clock_ghz: 1.0,
            sram_kib: 512.0,
            dram_gbps: 50.0,
            datapath_bits: 16,
            families: Vec::new(),
        }
    }
}

/// Errors validating an [`AcceleratorConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// PE count must be positive.
    NoProcessingElements,
    /// Clock must be in a manufacturable range.
    ClockOutOfRange,
    /// Datapath width must be 8, 16, or 32 bits.
    UnsupportedDatapath(u32),
    /// SRAM or DRAM parameter non-positive.
    BadMemoryParameter,
}

impl core::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NoProcessingElements => f.write_str("pe_count must be positive"),
            Self::ClockOutOfRange => f.write_str("clock must be within 0.1..3.0 GHz"),
            Self::UnsupportedDatapath(b) => write!(f, "unsupported datapath width {b} bits"),
            Self::BadMemoryParameter => f.write_str("sram and dram parameters must be positive"),
        }
    }
}

impl std::error::Error for GenerateError {}

impl AcceleratorConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), GenerateError> {
        if self.pe_count == 0 {
            return Err(GenerateError::NoProcessingElements);
        }
        if !(0.1..=3.0).contains(&self.clock_ghz) {
            return Err(GenerateError::ClockOutOfRange);
        }
        if ![8, 16, 32].contains(&self.datapath_bits) {
            return Err(GenerateError::UnsupportedDatapath(self.datapath_bits));
        }
        if self.sram_kib <= 0.0 || self.dram_gbps <= 0.0 {
            return Err(GenerateError::BadMemoryParameter);
        }
        Ok(())
    }

    /// Peak throughput: 2 ops (multiply + add) per PE per cycle.
    #[must_use]
    pub fn peak(&self) -> OpsPerSecond {
        OpsPerSecond::new(2.0 * self.pe_count as f64 * self.clock_ghz * 1e9)
    }

    /// Die area model: PEs scale with datapath width, SRAM at ~0.08
    /// mm²/KiB (16 nm-class), plus a fixed NoC/controller floor.
    #[must_use]
    pub fn die_area(&self) -> SquareMillimeters {
        let pe_area = self.pe_count as f64 * 0.002 * (f64::from(self.datapath_bits) / 16.0);
        let sram_area = self.sram_kib * 0.08;
        SquareMillimeters::new(8.0 + pe_area + sram_area)
    }

    /// Active power model: dynamic PE power (scaled by clock² as a proxy
    /// for the voltage needed), SRAM leakage, and DRAM interface power.
    #[must_use]
    pub fn active_power(&self) -> Watts {
        let pe = self.pe_count as f64
            * 0.004
            * self.clock_ghz
            * self.clock_ghz
            * (f64::from(self.datapath_bits) / 16.0);
        let sram = self.sram_kib * 0.0002;
        let dram = self.dram_gbps * 0.03;
        Watts::new(0.3 + pe + sram + dram)
    }

    /// Unit cost model: area-proportional silicon plus packaging.
    #[must_use]
    pub fn unit_cost_usd(&self) -> f64 {
        5.0 + self.die_area().value() * 0.35
    }

    /// Generates the platform model.
    ///
    /// Larger SRAM raises the *effective* bandwidth (more reuse on chip):
    /// `effective = dram × (1 + log2(1 + sram/64 KiB))`, capped at 8×.
    ///
    /// # Errors
    ///
    /// Returns a [`GenerateError`] if the configuration is invalid.
    pub fn generate(&self) -> Result<Platform, GenerateError> {
        self.validate()?;
        let reuse = (1.0 + (1.0 + self.sram_kib / 64.0).log2()).min(8.0);
        let effective_bw = BytesPerSecond::from_gigabytes_per_second(self.dram_gbps * reuse);
        let specialization = if self.families.is_empty() {
            Specialization::GeneralPurpose
        } else {
            Specialization::Families { families: self.families.clone(), fallback: 0.02 }
        };
        Ok(Platform::builder(PlatformKind::Asic)
            .name(format!(
                "gen-{}pe-{}mhz-{}kib",
                self.pe_count,
                (self.clock_ghz * 1000.0) as u64,
                self.sram_kib as u64
            ))
            .roofline(Roofline::new(self.peak(), effective_bw))
            .serial_rate(OpsPerSecond::from_gigaops(1.5))
            .dispatch_overhead(Seconds::from_micros(2.0))
            .power(self.active_power(), Watts::new(self.active_power().value() * 0.1))
            .mass(Grams::new(15.0 + self.die_area().value() * 0.2))
            .die_area(self.die_area())
            .unit_cost_usd(self.unit_cost_usd())
            .specialization(specialization)
            .build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::KernelProfile;

    #[test]
    fn default_config_generates() {
        let p = AcceleratorConfig::default().generate().unwrap();
        assert!(p.name().starts_with("gen-256pe"));
        // 256 PEs × 2 × 1 GHz = 512 GOPS.
        assert!((p.roofline().peak().as_gigaops() - 512.0).abs() < 1e-9);
        assert!(p.die_area().value() > 8.0);
        assert!(p.active_power().value() > 0.3);
    }

    #[test]
    fn more_pes_more_throughput_more_power_more_area() {
        let small = AcceleratorConfig { pe_count: 64, ..AcceleratorConfig::default() };
        let large = AcceleratorConfig { pe_count: 1024, ..AcceleratorConfig::default() };
        assert!(large.peak() > small.peak());
        assert!(large.active_power() > small.active_power());
        assert!(large.die_area() > small.die_area());
        assert!(large.unit_cost_usd() > small.unit_cost_usd());
    }

    #[test]
    fn sram_buys_effective_bandwidth() {
        let thin = AcceleratorConfig { sram_kib: 32.0, ..AcceleratorConfig::default() }
            .generate()
            .unwrap();
        let fat = AcceleratorConfig { sram_kib: 4096.0, ..AcceleratorConfig::default() }
            .generate()
            .unwrap();
        assert!(fat.roofline().bandwidth() > thin.roofline().bandwidth());
        // A memory-bound kernel gets faster with the bigger SRAM.
        let k = KernelProfile::gemv(2048, 2048);
        assert!(fat.estimate(&k).latency < thin.estimate(&k).latency);
    }

    #[test]
    fn narrower_datapath_is_cheaper() {
        let int8 = AcceleratorConfig { datapath_bits: 8, ..AcceleratorConfig::default() };
        let fp32 = AcceleratorConfig { datapath_bits: 32, ..AcceleratorConfig::default() };
        assert!(int8.die_area() < fp32.die_area());
        assert!(int8.active_power() < fp32.active_power());
    }

    #[test]
    fn specialized_generation_carries_families() {
        let cfg = AcceleratorConfig {
            families: vec![KernelFamily::CollisionGeometry],
            ..AcceleratorConfig::default()
        };
        let p = cfg.generate().unwrap();
        assert_eq!(p.match_factor(&KernelProfile::collision_batch(100, 10)), 1.0);
        assert_eq!(p.match_factor(&KernelProfile::gemm(64)), 0.02);
    }

    #[test]
    fn validation_catches_each_constraint() {
        let bad = AcceleratorConfig { pe_count: 0, ..AcceleratorConfig::default() };
        assert_eq!(bad.validate(), Err(GenerateError::NoProcessingElements));
        let bad = AcceleratorConfig { clock_ghz: 5.0, ..AcceleratorConfig::default() };
        assert_eq!(bad.validate(), Err(GenerateError::ClockOutOfRange));
        let bad = AcceleratorConfig { datapath_bits: 12, ..AcceleratorConfig::default() };
        assert_eq!(bad.validate(), Err(GenerateError::UnsupportedDatapath(12)));
        let bad = AcceleratorConfig { dram_gbps: 0.0, ..AcceleratorConfig::default() };
        assert_eq!(bad.validate(), Err(GenerateError::BadMemoryParameter));
        assert!(AcceleratorConfig::default().validate().is_ok());
    }

    #[test]
    fn error_messages_name_the_knob() {
        assert!(GenerateError::UnsupportedDatapath(12).to_string().contains("12"));
        assert!(GenerateError::ClockOutOfRange.to_string().contains("GHz"));
    }
}
