//! Compute platform models: CPUs, GPUs, FPGAs, and ASICs with analytic
//! latency/energy/area cost estimation.
//!
//! These models substitute for the silicon prototypes the paper's cited
//! works fabricated: they preserve the *relative ordering* and the
//! mechanism (roofline limits, Amdahl serial fractions, dispatch overheads,
//! specialization cliffs) rather than absolute nanoseconds.

use crate::cost::{Bound, CostEstimate};
use crate::roofline::Roofline;
use crate::workload::{KernelFamily, KernelProfile};
use m7_units::{
    Bytes, BytesPerSecond, Grams, Joules, OpsPerSecond, Seconds, SquareMillimeters, Watts,
};
use serde::{Deserialize, Serialize};

/// The broad platform classes of the paper's Challenge 5 ("Chips and
/// Salsa"): software on CPUs, programmable GPUs/FPGAs, and fixed-function
/// ASICs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformKind {
    /// Scalar CPU core (no SIMD), the conventional-software baseline.
    CpuScalar,
    /// Vectorized CPU (SIMD lanes + cache blocking).
    CpuSimd,
    /// Embedded GPU (Jetson-class).
    Gpu,
    /// Mid-size FPGA fabric.
    Fpga,
    /// Fixed-function ASIC.
    Asic,
}

impl core::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::CpuScalar => "cpu-scalar",
            Self::CpuSimd => "cpu-simd",
            Self::Gpu => "gpu",
            Self::Fpga => "fpga",
            Self::Asic => "asic",
        };
        f.write_str(s)
    }
}

/// How specialized a platform is, and to what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Specialization {
    /// Runs any kernel at full modeled throughput.
    GeneralPurpose,
    /// Accelerates one or more kernel *families* (cross-cutting design);
    /// anything else falls back to a slow host path.
    Families {
        /// Families that run at full throughput.
        families: Vec<KernelFamily>,
        /// Fraction of peak available to non-matching kernels (host
        /// fallback).
        fallback: f64,
    },
    /// A "widget": hardwired to kernels whose name starts with a prefix.
    Widget {
        /// Exact kernel-name prefix the datapath was synthesized for.
        name_prefix: String,
        /// Family of the widget datapath (partially reusable).
        family: KernelFamily,
        /// Fraction of peak for same-family kernels with a different shape.
        family_fraction: f64,
        /// Fraction of peak for everything else (host fallback).
        fallback: f64,
    },
}

/// An analytic model of one compute platform.
///
/// Latency model per kernel:
/// `t = overhead + serial_ops / serial_rate + parallel_ops / attainable`,
/// where `attainable` is the roofline throughput at the kernel's arithmetic
/// intensity, scaled by the specialization match factor.
///
/// # Examples
///
/// ```
/// use m7_arch::platform::{Platform, PlatformKind};
/// use m7_arch::workload::KernelProfile;
///
/// let simd = Platform::preset(PlatformKind::CpuSimd);
/// let scalar = Platform::preset(PlatformKind::CpuScalar);
/// let k = KernelProfile::collision_batch(4096, 64);
/// let fast = simd.estimate(&k);
/// let slow = scalar.estimate(&k);
/// assert!(fast.latency < slow.latency);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    name: String,
    kind: PlatformKind,
    roofline: Roofline,
    /// Throughput of the non-parallelizable fraction.
    serial_rate: OpsPerSecond,
    /// Fixed dispatch/launch overhead per kernel invocation.
    dispatch_overhead: Seconds,
    /// Power while executing.
    active_power: Watts,
    /// Power while idle.
    idle_power: Watts,
    /// Board mass contributed to the vehicle.
    mass: Grams,
    /// Silicon die area.
    die_area: SquareMillimeters,
    /// Unit cost in dollars.
    unit_cost_usd: f64,
    specialization: Specialization,
}

impl Platform {
    /// A representative preset for each platform kind.
    ///
    /// Numbers are order-of-magnitude representative of 2024-era embedded
    /// parts; they are inputs to a relative model, not datasheet claims.
    #[must_use]
    pub fn preset(kind: PlatformKind) -> Self {
        match kind {
            PlatformKind::CpuScalar => Self {
                name: "cpu-scalar".into(),
                kind,
                roofline: Roofline::new(
                    OpsPerSecond::from_gigaops(2.0),
                    BytesPerSecond::from_gigabytes_per_second(10.0),
                ),
                serial_rate: OpsPerSecond::from_gigaops(2.0),
                dispatch_overhead: Seconds::ZERO,
                active_power: Watts::new(12.0),
                idle_power: Watts::new(2.0),
                mass: Grams::new(60.0),
                die_area: SquareMillimeters::new(80.0),
                unit_cost_usd: 60.0,
                specialization: Specialization::GeneralPurpose,
            },
            PlatformKind::CpuSimd => Self {
                name: "cpu-simd".into(),
                kind,
                roofline: Roofline::new(
                    OpsPerSecond::from_gigaops(60.0),
                    BytesPerSecond::from_gigabytes_per_second(40.0),
                ),
                serial_rate: OpsPerSecond::from_gigaops(2.5),
                dispatch_overhead: Seconds::ZERO,
                active_power: Watts::new(20.0),
                idle_power: Watts::new(3.0),
                mass: Grams::new(60.0),
                die_area: SquareMillimeters::new(120.0),
                unit_cost_usd: 150.0,
                specialization: Specialization::GeneralPurpose,
            },
            PlatformKind::Gpu => Self {
                name: "gpu-embedded".into(),
                kind,
                roofline: Roofline::new(
                    OpsPerSecond::from_teraops(2.0),
                    BytesPerSecond::from_gigabytes_per_second(200.0),
                ),
                serial_rate: OpsPerSecond::from_gigaops(1.0),
                dispatch_overhead: Seconds::from_micros(30.0),
                active_power: Watts::new(30.0),
                idle_power: Watts::new(5.0),
                mass: Grams::new(280.0),
                die_area: SquareMillimeters::new(350.0),
                unit_cost_usd: 500.0,
                specialization: Specialization::GeneralPurpose,
            },
            PlatformKind::Fpga => Self {
                name: "fpga-midrange".into(),
                kind,
                roofline: Roofline::new(
                    OpsPerSecond::from_gigaops(600.0),
                    BytesPerSecond::from_gigabytes_per_second(60.0),
                ),
                serial_rate: OpsPerSecond::from_gigaops(1.0),
                dispatch_overhead: Seconds::from_micros(5.0),
                active_power: Watts::new(15.0),
                idle_power: Watts::new(4.0),
                mass: Grams::new(150.0),
                die_area: SquareMillimeters::new(400.0),
                unit_cost_usd: 400.0,
                specialization: Specialization::GeneralPurpose,
            },
            PlatformKind::Asic => Self {
                name: "asic".into(),
                kind,
                roofline: Roofline::new(
                    OpsPerSecond::from_teraops(4.0),
                    BytesPerSecond::from_gigabytes_per_second(120.0),
                ),
                serial_rate: OpsPerSecond::from_gigaops(1.5),
                dispatch_overhead: Seconds::from_micros(2.0),
                active_power: Watts::new(5.0),
                idle_power: Watts::new(0.5),
                mass: Grams::new(30.0),
                die_area: SquareMillimeters::new(60.0),
                unit_cost_usd: 35.0,
                specialization: Specialization::GeneralPurpose,
            },
        }
    }

    /// Starts a builder from a preset, for customized platforms.
    #[must_use]
    pub fn builder(kind: PlatformKind) -> PlatformBuilder {
        PlatformBuilder { platform: Self::preset(kind) }
    }

    /// Platform name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Platform class.
    #[must_use]
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// The platform roofline.
    #[must_use]
    pub fn roofline(&self) -> Roofline {
        self.roofline
    }

    /// Throughput of the non-parallelizable fraction.
    #[must_use]
    pub fn serial_rate(&self) -> OpsPerSecond {
        self.serial_rate
    }

    /// Fixed dispatch/launch overhead per kernel invocation.
    #[must_use]
    pub fn dispatch_overhead(&self) -> Seconds {
        self.dispatch_overhead
    }

    /// Board mass.
    #[must_use]
    pub fn mass(&self) -> Grams {
        self.mass
    }

    /// Power while executing.
    #[must_use]
    pub fn active_power(&self) -> Watts {
        self.active_power
    }

    /// Power while idle.
    #[must_use]
    pub fn idle_power(&self) -> Watts {
        self.idle_power
    }

    /// Silicon die area.
    #[must_use]
    pub fn die_area(&self) -> SquareMillimeters {
        self.die_area
    }

    /// Unit cost in dollars.
    #[must_use]
    pub fn unit_cost_usd(&self) -> f64 {
        self.unit_cost_usd
    }

    /// The specialization policy.
    #[must_use]
    pub fn specialization(&self) -> &Specialization {
        &self.specialization
    }

    /// The fraction of peak throughput available to `profile` under this
    /// platform's specialization (1.0 for a perfect match).
    #[must_use]
    pub fn match_factor(&self, profile: &KernelProfile) -> f64 {
        match &self.specialization {
            Specialization::GeneralPurpose => 1.0,
            Specialization::Families { families, fallback } => {
                if families.contains(&profile.family()) {
                    1.0
                } else {
                    *fallback
                }
            }
            Specialization::Widget { name_prefix, family, family_fraction, fallback } => {
                if profile.name().starts_with(name_prefix.as_str()) {
                    1.0
                } else if profile.family() == *family {
                    *family_fraction
                } else {
                    *fallback
                }
            }
        }
    }

    /// Estimates the cost of one invocation of `profile`.
    #[must_use]
    pub fn estimate(&self, profile: &KernelProfile) -> CostEstimate {
        let factor = self.match_factor(profile);
        let ops = profile.ops();
        let serial_ops = ops * (1.0 - profile.parallel_fraction());
        let parallel_ops = ops * profile.parallel_fraction();

        let attainable = OpsPerSecond::new(
            self.roofline.attainable(profile.arithmetic_intensity()).value() * factor,
        );
        let t_overhead = self.dispatch_overhead;
        let t_serial =
            if serial_ops.value() > 0.0 { serial_ops / self.serial_rate } else { Seconds::ZERO };
        let t_parallel =
            if parallel_ops.value() > 0.0 { parallel_ops / attainable } else { Seconds::ZERO };
        let latency = t_overhead + t_serial + t_parallel;

        let bound = {
            let memory_limited = self.roofline.is_memory_bound(profile.arithmetic_intensity());
            let mut best = (t_overhead, Bound::Overhead);
            if t_serial > best.0 {
                best = (t_serial, Bound::Serial);
            }
            if t_parallel > best.0 {
                best = (t_parallel, if memory_limited { Bound::Memory } else { Bound::Compute });
            }
            best.1
        };

        let energy: Joules = self.active_power * latency;
        let achieved = if latency.value() > 0.0 { ops / latency } else { OpsPerSecond::ZERO };
        CostEstimate { latency, energy, achieved, power: self.active_power, bound }
    }

    /// Estimates the total cost of a pipeline of kernels executed
    /// sequentially.
    #[must_use]
    pub fn estimate_pipeline(&self, profiles: &[KernelProfile]) -> CostEstimate {
        let mut latency = Seconds::ZERO;
        let mut energy = Joules::ZERO;
        let mut total_ops = 0.0;
        let mut bound = Bound::Overhead;
        let mut worst = Seconds::ZERO;
        for p in profiles {
            let c = self.estimate(p);
            latency += c.latency;
            energy += c.energy;
            total_ops += p.ops().value();
            if c.latency > worst {
                worst = c.latency;
                bound = c.bound;
            }
        }
        let achieved = if latency.value() > 0.0 {
            OpsPerSecond::new(total_ops / latency.value())
        } else {
            OpsPerSecond::ZERO
        };
        CostEstimate { latency, energy, achieved, power: self.active_power, bound }
    }

    /// Bytes-per-second of input this platform can absorb for `profile`
    /// when invoked back-to-back (sensor-rate matching, Challenge 4).
    #[must_use]
    pub fn sustainable_input_rate(
        &self,
        profile: &KernelProfile,
        input_bytes: Bytes,
    ) -> BytesPerSecond {
        let per_invocation = self.estimate(profile).latency;
        if per_invocation.value() <= 0.0 {
            return BytesPerSecond::new(f64::INFINITY);
        }
        BytesPerSecond::new(input_bytes.value() / per_invocation.value())
    }
}

/// Builder for customized [`Platform`]s.
///
/// # Examples
///
/// ```
/// use m7_arch::platform::{Platform, PlatformKind, Specialization};
/// use m7_arch::workload::KernelFamily;
///
/// let accel = Platform::builder(PlatformKind::Asic)
///     .name("collision-accel")
///     .specialization(Specialization::Families {
///         families: vec![KernelFamily::CollisionGeometry],
///         fallback: 0.02,
///     })
///     .build();
/// assert_eq!(accel.name(), "collision-accel");
/// ```
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    platform: Platform,
}

impl PlatformBuilder {
    /// Sets the platform name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.platform.name = name.into();
        self
    }

    /// Sets the roofline.
    #[must_use]
    pub fn roofline(mut self, roofline: Roofline) -> Self {
        self.platform.roofline = roofline;
        self
    }

    /// Sets the serial-fraction throughput.
    #[must_use]
    pub fn serial_rate(mut self, rate: OpsPerSecond) -> Self {
        self.platform.serial_rate = rate;
        self
    }

    /// Sets the dispatch overhead.
    #[must_use]
    pub fn dispatch_overhead(mut self, overhead: Seconds) -> Self {
        self.platform.dispatch_overhead = overhead;
        self
    }

    /// Sets active and idle power.
    #[must_use]
    pub fn power(mut self, active: Watts, idle: Watts) -> Self {
        self.platform.active_power = active;
        self.platform.idle_power = idle;
        self
    }

    /// Sets the board mass.
    #[must_use]
    pub fn mass(mut self, mass: Grams) -> Self {
        self.platform.mass = mass;
        self
    }

    /// Sets the die area.
    #[must_use]
    pub fn die_area(mut self, area: SquareMillimeters) -> Self {
        self.platform.die_area = area;
        self
    }

    /// Sets the unit cost.
    #[must_use]
    pub fn unit_cost_usd(mut self, cost: f64) -> Self {
        self.platform.unit_cost_usd = cost;
        self
    }

    /// Sets the specialization policy.
    #[must_use]
    pub fn specialization(mut self, spec: Specialization) -> Self {
        self.platform.specialization = spec;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(self) -> Platform {
        self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_ordering_for_parallel_kernel() {
        // A large parallel collision batch: ASIC ≥ GPU ≥ SIMD ≥ scalar.
        let k = KernelProfile::collision_batch(100_000, 128);
        let lat = |kind| Platform::preset(kind).estimate(&k).latency;
        assert!(lat(PlatformKind::Asic) < lat(PlatformKind::Gpu));
        assert!(lat(PlatformKind::Gpu) < lat(PlatformKind::CpuSimd));
        assert!(lat(PlatformKind::CpuSimd) < lat(PlatformKind::CpuScalar));
    }

    #[test]
    fn serial_kernel_prefers_cpu() {
        // RNEA is mostly serial: the scalar CPU with its fast serial rate
        // beats the GPU despite the GPU's peak.
        let k = KernelProfile::rnea(7);
        let cpu = Platform::preset(PlatformKind::CpuScalar).estimate(&k);
        let gpu = Platform::preset(PlatformKind::Gpu).estimate(&k);
        assert!(cpu.latency < gpu.latency, "Amdahl should favor the CPU");
        assert_eq!(cpu.bound, Bound::Serial);
    }

    #[test]
    fn tiny_kernel_is_overhead_bound_on_gpu() {
        let k = KernelProfile::gemv(8, 8);
        let gpu = Platform::preset(PlatformKind::Gpu).estimate(&k);
        assert_eq!(gpu.bound, Bound::Overhead);
    }

    #[test]
    fn memory_bound_detection() {
        // GEMV streams the whole matrix: memory-bound on wide machines.
        let k = KernelProfile::gemv(2048, 2048);
        let simd = Platform::preset(PlatformKind::CpuSimd).estimate(&k);
        assert_eq!(simd.bound, Bound::Memory);
    }

    #[test]
    fn widget_cliff() {
        let widget = Platform::builder(PlatformKind::Asic)
            .specialization(Specialization::Widget {
                name_prefix: "correlation-".into(),
                family: KernelFamily::GridCorrelation,
                family_fraction: 0.3,
                fallback: 0.02,
            })
            .build();
        let on_target = KernelProfile::correlation_scan(9261, 90);
        let off_target = KernelProfile::collision_batch(10_000, 64);
        assert_eq!(widget.match_factor(&on_target), 1.0);
        assert_eq!(widget.match_factor(&off_target), 0.02);
        // Off-target latency collapses relative to a general-purpose ASIC of
        // the same peak throughput running the same kernel.
        let general = Platform::preset(PlatformKind::Asic);
        let widget_off = widget.estimate(&off_target).latency;
        let general_off = general.estimate(&off_target).latency;
        assert!(
            widget_off > general_off * 1.5,
            "widget off-target {widget_off} vs general {general_off}"
        );
        // And achieved throughput on-target clearly beats off-target.
        let t_on = widget.estimate(&on_target);
        let t_off = widget.estimate(&off_target);
        assert!(t_on.achieved.value() > t_off.achieved.value() * 2.0);
    }

    #[test]
    fn family_accelerator_covers_family() {
        let accel = Platform::builder(PlatformKind::Asic)
            .specialization(Specialization::Families {
                families: vec![KernelFamily::CollisionGeometry, KernelFamily::DenseLinearAlgebra],
                fallback: 0.05,
            })
            .build();
        assert_eq!(accel.match_factor(&KernelProfile::collision_batch(100, 10)), 1.0);
        assert_eq!(accel.match_factor(&KernelProfile::gemm(64)), 1.0);
        assert_eq!(accel.match_factor(&KernelProfile::correlation_scan(100, 10)), 0.05);
    }

    #[test]
    fn pipeline_sums_costs() {
        let cpu = Platform::preset(PlatformKind::CpuSimd);
        let a = KernelProfile::gemv(256, 256);
        let b = KernelProfile::collision_batch(1000, 32);
        let sum = cpu.estimate(&a).latency + cpu.estimate(&b).latency;
        let pipe = cpu.estimate_pipeline(&[a, b]);
        assert!((pipe.latency.value() - sum.value()).abs() < 1e-15);
    }

    #[test]
    fn builder_overrides() {
        let p = Platform::builder(PlatformKind::Fpga)
            .name("custom")
            .mass(Grams::new(99.0))
            .unit_cost_usd(1234.0)
            .build();
        assert_eq!(p.name(), "custom");
        assert_eq!(p.mass(), Grams::new(99.0));
        assert_eq!(p.unit_cost_usd(), 1234.0);
        assert_eq!(p.kind(), PlatformKind::Fpga);
    }

    #[test]
    fn sustainable_input_rate_scales_inversely_with_latency() {
        let k = KernelProfile::feature_extract(640, 480);
        let frame = Bytes::new(640.0 * 480.0);
        let slow = Platform::preset(PlatformKind::CpuScalar).sustainable_input_rate(&k, frame);
        let fast = Platform::preset(PlatformKind::Gpu).sustainable_input_rate(&k, frame);
        assert!(fast.value() > slow.value());
    }

    #[test]
    fn kind_display() {
        assert_eq!(PlatformKind::CpuSimd.to_string(), "cpu-simd");
        assert_eq!(PlatformKind::Asic.to_string(), "asic");
    }
}
