//! Cost estimates produced by platform models.

use m7_units::{Joules, OpsPerSecond, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Which roof limited the kernel on the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Limited by peak arithmetic throughput.
    Compute,
    /// Limited by memory bandwidth.
    Memory,
    /// Limited by the non-parallelizable fraction (Amdahl).
    Serial,
    /// Limited by dispatch/launch overhead.
    Overhead,
}

impl core::fmt::Display for Bound {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Self::Compute => "compute-bound",
            Self::Memory => "memory-bound",
            Self::Serial => "serial-bound",
            Self::Overhead => "overhead-bound",
        };
        f.write_str(s)
    }
}

/// The modeled cost of one kernel invocation on one platform.
///
/// # Examples
///
/// ```
/// use m7_arch::platform::{Platform, PlatformKind};
/// use m7_arch::workload::KernelProfile;
///
/// let cpu = Platform::preset(PlatformKind::CpuScalar);
/// let cost = cpu.estimate(&KernelProfile::gemv(512, 512));
/// assert!(cost.latency.value() > 0.0);
/// assert!(cost.energy.value() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Wall-clock latency of the invocation.
    pub latency: Seconds,
    /// Energy drawn during the invocation.
    pub energy: Joules,
    /// Achieved throughput (`ops / latency`).
    pub achieved: OpsPerSecond,
    /// Average power during the invocation.
    pub power: Watts,
    /// The limiting roof.
    pub bound: Bound,
}

impl CostEstimate {
    /// Ratio of another estimate's latency to this one (how many times
    /// faster this estimate is).
    ///
    /// # Panics
    ///
    /// Panics if this estimate's latency is zero.
    #[must_use]
    pub fn speedup_over(&self, baseline: &Self) -> f64 {
        assert!(self.latency.value() > 0.0, "latency must be positive");
        baseline.latency / self.latency
    }

    /// Energy-delay product, a common accelerator figure of merit.
    #[must_use]
    pub fn energy_delay_product(&self) -> f64 {
        self.energy.value() * self.latency.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate(latency: f64, energy: f64) -> CostEstimate {
        CostEstimate {
            latency: Seconds::new(latency),
            energy: Joules::new(energy),
            achieved: OpsPerSecond::new(1.0 / latency),
            power: Watts::new(energy / latency),
            bound: Bound::Compute,
        }
    }

    #[test]
    fn speedup_ratio() {
        let fast = estimate(0.001, 0.1);
        let slow = estimate(0.01, 0.1);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn edp() {
        let e = estimate(2.0, 3.0);
        assert_eq!(e.energy_delay_product(), 6.0);
    }

    #[test]
    fn bound_display() {
        assert_eq!(Bound::Memory.to_string(), "memory-bound");
        assert_eq!(Bound::Overhead.to_string(), "overhead-bound");
    }
}
