//! Shared-resource contention: the "accelerators are not free" model
//! (Challenge 4, experiment E10).
//!
//! Every accelerator added to an SoC shares DRAM bandwidth and interconnect
//! with the host and with its peers. This module models that sharing with
//! max-min fair allocation plus an M/M/1-style queueing delay as the bus
//! approaches saturation.

use m7_units::BytesPerSecond;
use serde::{Deserialize, Serialize};

/// A shared memory bus with max-min fair bandwidth allocation.
///
/// # Examples
///
/// ```
/// use m7_arch::contention::SharedBus;
/// use m7_units::BytesPerSecond;
///
/// let bus = SharedBus::new(BytesPerSecond::from_gigabytes_per_second(10.0));
/// let demands = [
///     BytesPerSecond::from_gigabytes_per_second(8.0),
///     BytesPerSecond::from_gigabytes_per_second(8.0),
/// ];
/// let alloc = bus.allocate(&demands);
/// // Oversubscribed 16 GB/s of demand on a 10 GB/s bus: each gets 5.
/// assert!((alloc[0].as_gigabytes_per_second() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedBus {
    capacity: BytesPerSecond,
}

impl SharedBus {
    /// Creates a bus with the given total capacity.
    ///
    /// # Panics
    ///
    /// Panics if capacity is non-positive or non-finite.
    #[must_use]
    pub fn new(capacity: BytesPerSecond) -> Self {
        assert!(capacity.value() > 0.0 && capacity.is_finite(), "bus capacity must be positive");
        Self { capacity }
    }

    /// Total bus capacity.
    #[must_use]
    pub fn capacity(&self) -> BytesPerSecond {
        self.capacity
    }

    /// Utilization of the bus under the given demands (may exceed 1).
    #[must_use]
    pub fn utilization(&self, demands: &[BytesPerSecond]) -> f64 {
        let total: f64 = demands.iter().map(|d| d.value()).sum();
        total / self.capacity.value()
    }

    /// Max-min fair allocation of capacity across demands.
    ///
    /// Clients demanding less than their fair share keep their full demand;
    /// the surplus is redistributed among the rest.
    #[must_use]
    pub fn allocate(&self, demands: &[BytesPerSecond]) -> Vec<BytesPerSecond> {
        let n = demands.len();
        if n == 0 {
            return Vec::new();
        }
        let mut alloc = vec![0.0f64; n];
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut capacity_left = self.capacity.value();
        // Iteratively satisfy the smallest demands.
        loop {
            if remaining.is_empty() || capacity_left <= 0.0 {
                break;
            }
            let fair = capacity_left / remaining.len() as f64;
            let (satisfied, rest): (Vec<usize>, Vec<usize>) =
                remaining.iter().partition(|&&i| demands[i].value() <= fair);
            if satisfied.is_empty() {
                for &i in &remaining {
                    alloc[i] = fair;
                }
                break;
            }
            for &i in &satisfied {
                alloc[i] = demands[i].value();
                capacity_left -= demands[i].value();
            }
            remaining = rest;
        }
        alloc.into_iter().map(BytesPerSecond::new).collect()
    }

    /// Per-client sustained-rate slowdown factors (`demand / allocation`,
    /// ≥ 1).
    ///
    /// Unlike [`SharedBus::allocate`], the division here is against a
    /// *contention-degraded* effective capacity: as raw utilization rises
    /// toward saturation, bank conflicts and arbitration waste up to 30% of
    /// the nominal bandwidth, so adding clients hurts before the bus is
    /// nominally full.
    #[must_use]
    pub fn slowdowns(&self, demands: &[BytesPerSecond]) -> Vec<f64> {
        let rho = self.utilization(demands);
        let effective = BytesPerSecond::new(self.capacity.value() * (1.0 - 0.3 * rho.min(1.0)));
        let alloc = Self::new(effective).allocate(demands);
        demands
            .iter()
            .zip(&alloc)
            .map(|(d, a)| {
                if d.value() <= 0.0 {
                    1.0
                } else if a.value() <= 0.0 {
                    f64::INFINITY
                } else {
                    (d.value() / a.value()).max(1.0)
                }
            })
            .collect()
    }

    /// M/M/1-style queueing *latency* multiplier `1 / (1 − ρ)`, capped at
    /// 10×. Applies to individual-request latency below saturation; use
    /// [`SharedBus::slowdowns`] for sustained throughput.
    #[must_use]
    pub fn queueing_multiplier(&self, utilization: f64) -> f64 {
        if utilization >= 1.0 {
            return 10.0;
        }
        (1.0 / (1.0 - utilization.max(0.0))).min(10.0)
    }
}

/// Aggregate throughput of `n` identical accelerators sharing one bus, each
/// demanding `per_unit` bandwidth and achieving throughput proportional to
/// allocated bandwidth.
///
/// Returns `(aggregate_scale, per_unit_scale)` relative to one uncontended
/// accelerator — the "adding accelerators is not free" curve of E10.
#[must_use]
pub fn scaling_under_contention(bus: &SharedBus, per_unit: BytesPerSecond, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    let demands = vec![per_unit; n];
    let slow = bus.slowdowns(&demands);
    let per_unit_scale = 1.0 / slow[0];
    (per_unit_scale * n as f64, per_unit_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn gbps(v: f64) -> BytesPerSecond {
        BytesPerSecond::from_gigabytes_per_second(v)
    }

    #[test]
    fn undersubscribed_bus_grants_all() {
        let bus = SharedBus::new(gbps(10.0));
        let alloc = bus.allocate(&[gbps(2.0), gbps(3.0)]);
        assert_eq!(alloc[0], gbps(2.0));
        assert_eq!(alloc[1], gbps(3.0));
    }

    #[test]
    fn oversubscribed_bus_is_fair() {
        let bus = SharedBus::new(gbps(10.0));
        let alloc = bus.allocate(&[gbps(20.0), gbps(20.0)]);
        assert!((alloc[0].as_gigabytes_per_second() - 5.0).abs() < 1e-9);
        assert!((alloc[1].as_gigabytes_per_second() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn small_demand_is_protected() {
        let bus = SharedBus::new(gbps(10.0));
        let alloc = bus.allocate(&[gbps(1.0), gbps(100.0)]);
        assert_eq!(alloc[0], gbps(1.0), "small client keeps its demand");
        assert!((alloc[1].as_gigabytes_per_second() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_grows_with_clients() {
        let bus = SharedBus::new(gbps(10.0));
        let one = bus.slowdowns(&[gbps(4.0)])[0];
        let three = bus.slowdowns(&[gbps(4.0); 3])[0];
        assert_eq!(one, 1.0, "a lone modest client is unimpeded");
        assert!(three > one, "more clients must mean more slowdown");
    }

    #[test]
    fn queueing_multiplier_shape() {
        let bus = SharedBus::new(gbps(10.0));
        assert_eq!(bus.queueing_multiplier(0.0), 1.0);
        assert!(bus.queueing_multiplier(0.9) > bus.queueing_multiplier(0.5));
        assert!(bus.queueing_multiplier(0.99) <= 10.0);
        assert_eq!(bus.queueing_multiplier(1.5), 10.0);
    }

    #[test]
    fn aggregate_scaling_saturates() {
        // Each accelerator wants 4 GB/s of a 10 GB/s bus.
        let bus = SharedBus::new(gbps(10.0));
        let (agg1, per1) = scaling_under_contention(&bus, gbps(4.0), 1);
        let (agg4, per4) = scaling_under_contention(&bus, gbps(4.0), 4);
        let (agg8, per8) = scaling_under_contention(&bus, gbps(4.0), 8);
        assert!(per1 > per4 && per4 > per8, "per-unit throughput degrades");
        assert!(agg4 > agg1, "some aggregate gain remains");
        // Once saturated, aggregate stops growing (bounded by capacity).
        assert!(agg8 <= agg4 * 1.05, "aggregate saturates: {agg8} vs {agg4}");
    }

    #[test]
    fn empty_demands() {
        let bus = SharedBus::new(gbps(10.0));
        assert!(bus.allocate(&[]).is_empty());
        assert!(bus.slowdowns(&[]).is_empty());
        assert_eq!(scaling_under_contention(&bus, gbps(1.0), 0), (0.0, 0.0));
    }

    proptest! {
        #[test]
        fn prop_allocation_never_exceeds_capacity(
            demands in prop::collection::vec(0.1..50.0f64, 1..10),
        ) {
            let bus = SharedBus::new(gbps(10.0));
            let demands: Vec<BytesPerSecond> = demands.into_iter().map(gbps).collect();
            let alloc = bus.allocate(&demands);
            let total: f64 = alloc.iter().map(|a| a.value()).sum();
            prop_assert!(total <= bus.capacity().value() * (1.0 + 1e-9));
            for (a, d) in alloc.iter().zip(&demands) {
                prop_assert!(a.value() <= d.value() + 1e-9, "never allocate more than demanded");
            }
        }

        #[test]
        fn prop_slowdowns_at_least_one(
            demands in prop::collection::vec(0.1..50.0f64, 1..10),
        ) {
            let bus = SharedBus::new(gbps(10.0));
            let demands: Vec<BytesPerSecond> = demands.into_iter().map(gbps).collect();
            for s in bus.slowdowns(&demands) {
                prop_assert!(s >= 1.0 - 1e-12);
            }
        }
    }
}
