//! A two-level memory-hierarchy model: effective bandwidth as a function
//! of working-set size.
//!
//! Roofline bandwidth is not one number — it depends on where the working
//! set lives. This model gives cost estimation a principled way to pick
//! the bandwidth a kernel actually sees, and quantifies why the batched
//! collision checker (working set = obstacle SoA, a few KiB) runs so far
//! above DRAM speed.

use m7_units::{Bytes, BytesPerSecond};
use serde::{Deserialize, Serialize};

/// A two-level (SRAM + DRAM) hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheHierarchy {
    /// On-chip SRAM capacity.
    pub sram: Bytes,
    /// SRAM bandwidth.
    pub sram_bandwidth: BytesPerSecond,
    /// DRAM bandwidth.
    pub dram_bandwidth: BytesPerSecond,
}

impl CacheHierarchy {
    /// A representative embedded hierarchy: 1 MiB of SRAM at 400 GB/s over
    /// 25 GB/s DRAM.
    #[must_use]
    pub fn embedded() -> Self {
        Self {
            sram: Bytes::from_mebibytes(1.0),
            sram_bandwidth: BytesPerSecond::from_gigabytes_per_second(400.0),
            dram_bandwidth: BytesPerSecond::from_gigabytes_per_second(25.0),
        }
    }

    /// Fraction of accesses served from SRAM for a uniformly re-walked
    /// working set of the given size: 1.0 when it fits, decaying with the
    /// capacity ratio when it does not (a standard capacity-miss model).
    #[must_use]
    pub fn hit_rate(&self, working_set: Bytes) -> f64 {
        if working_set.value() <= 0.0 {
            return 1.0;
        }
        if working_set <= self.sram {
            1.0
        } else {
            // The cached fraction of the set survives each sweep.
            self.sram / working_set
        }
    }

    /// Effective sustained bandwidth for a working set of the given size
    /// (harmonic blend of SRAM and DRAM service rates).
    #[must_use]
    pub fn effective_bandwidth(&self, working_set: Bytes) -> BytesPerSecond {
        let h = self.hit_rate(working_set);
        let inv = h / self.sram_bandwidth.value() + (1.0 - h) / self.dram_bandwidth.value();
        BytesPerSecond::new(1.0 / inv)
    }

    /// The working-set size at which effective bandwidth has fallen
    /// halfway (in rate) from SRAM toward DRAM — the hierarchy's "cliff
    /// edge" for blocking decisions.
    #[must_use]
    pub fn half_speed_working_set(&self) -> Bytes {
        // Solve effective(ws) = 2·dram (≈ halfway in harmonic terms) for
        // ws > sram: h = sram/ws.
        let target_inv = 1.0 / (2.0 * self.dram_bandwidth.value());
        // h/sbw + (1-h)/dbw = target_inv  →  h = (1/dbw − target_inv) /
        // (1/dbw − 1/sbw)
        let h = (1.0 / self.dram_bandwidth.value() - target_inv)
            / (1.0 / self.dram_bandwidth.value() - 1.0 / self.sram_bandwidth.value());
        Bytes::new(self.sram.value() / h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn resident_sets_run_at_sram_speed() {
        let h = CacheHierarchy::embedded();
        let bw = h.effective_bandwidth(Bytes::from_kibibytes(64.0));
        assert_eq!(bw, h.sram_bandwidth);
        assert_eq!(h.hit_rate(Bytes::ZERO), 1.0);
    }

    #[test]
    fn huge_sets_approach_dram_speed() {
        let h = CacheHierarchy::embedded();
        let bw = h.effective_bandwidth(Bytes::from_gigabytes(4.0));
        let dram = h.dram_bandwidth.value();
        assert!(bw.value() < dram * 1.05, "got {} vs dram {dram}", bw.value());
        assert!(bw.value() >= dram, "never below DRAM");
    }

    #[test]
    fn bandwidth_is_monotone_in_working_set() {
        let h = CacheHierarchy::embedded();
        let sizes = [0.5, 1.0, 2.0, 8.0, 64.0, 512.0];
        let bws: Vec<f64> = sizes
            .iter()
            .map(|&mib| h.effective_bandwidth(Bytes::from_mebibytes(mib)).value())
            .collect();
        for w in bws.windows(2) {
            assert!(w[1] <= w[0] + 1e-6);
        }
    }

    #[test]
    fn half_speed_point_is_past_the_sram_size() {
        let h = CacheHierarchy::embedded();
        let ws = h.half_speed_working_set();
        assert!(ws > h.sram);
        let bw = h.effective_bandwidth(ws);
        assert!((bw.value() - 2.0 * h.dram_bandwidth.value()).abs() / bw.value() < 0.01);
    }

    proptest! {
        #[test]
        fn prop_effective_bandwidth_bounded(mib in 0.01..4096.0f64) {
            let h = CacheHierarchy::embedded();
            let bw = h.effective_bandwidth(Bytes::from_mebibytes(mib));
            prop_assert!(bw.value() <= h.sram_bandwidth.value() + 1e-6);
            prop_assert!(bw.value() >= h.dram_bandwidth.value() - 1e-6);
        }

        #[test]
        fn prop_hit_rate_in_unit_interval(mib in 0.01..4096.0f64) {
            let h = CacheHierarchy::embedded();
            let rate = h.hit_rate(Bytes::from_mebibytes(mib));
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }
}
